"""Cross-region spillover: terminally failed jobs migrate deterministically.

The scenario is engineered so the migration path must fire: region ``a``
suffers a fleet-wide kill-running maintenance window shortly into the run
and ``max_requeues=0`` turns every killed job into a terminal shard failure,
which the router then re-routes to region ``b`` (paying the hop's transfer
latency and fidelity penalty).
"""

import pytest

from repro.cloud.config import SimulationConfig
from repro.dynamics import MaintenanceWindow, Scenario, register_scenario
from repro.dynamics.presets import _REGISTRY as _SCENARIOS
from repro.region import RegionSpec, RegionTopology, RegionalCloud

KILL_SCENARIO = "spill-test-kill"


@pytest.fixture()
def topology():
    register_scenario(
        Scenario(
            name=KILL_SCENARIO,
            maintenance=(
                MaintenanceWindow(
                    start=50.0, duration=50_000.0, device=None, kill_running=True
                ),
            ),
        )
    )
    yield RegionTopology(
        name="spill-test",
        regions=(
            RegionSpec(
                name="a",
                device_names=("ibm_strasbourg", "ibm_brussels"),
                workload_share=0.5,
                scenario=KILL_SCENARIO,
            ),
            RegionSpec(
                name="b",
                device_names=("ibm_kyiv", "ibm_quebec", "ibm_kawasaki"),
                workload_share=0.5,
            ),
        ),
    )
    _SCENARIOS.pop(KILL_SCENARIO, None)


def _config(**overrides):
    payload = dict(num_jobs=10, policy="fidelity", max_requeues=0, seed=7)
    payload.update(overrides)
    return SimulationConfig(**payload)


class TestMigration:
    def test_killed_jobs_migrate_and_complete(self, topology):
        cloud = RegionalCloud(config=_config(), topology=topology)
        records = cloud.run_until_complete()
        assert cloud.migrations, "the kill window must force at least one migration"
        assert all(source == "a" and target == "b" and round_index >= 1
                   for _, source, target, round_index in cloud.migrations)
        # Every job either completed (possibly after migrating) or is in the
        # terminal failure report.
        assert len(records) + len(cloud.failed) == 10

        migrated_ids = {m[0] for m in cloud.migrations}
        migrated_records = [r for r in records if r.job_id in migrated_ids]
        assert migrated_records
        for record in migrated_records:
            # Origin-side arrival restored; the hop's transfer latency is
            # surfaced as communication time.
            assert record.arrival_time == 0.0
            assert record.communication_time > 0.0
            assert cloud.region_of[record.job_id] == "b"

    def test_migration_is_deterministic(self, topology):
        first = RegionalCloud(config=_config(), topology=topology)
        first_records = first.run_until_complete()
        second = RegionalCloud(config=_config(), topology=topology)
        second_records = second.run_until_complete()
        assert [r.as_dict() for r in first_records] == [
            r.as_dict() for r in second_records
        ]
        assert first.migrations == second.migrations
        assert first.failed == second.failed

    def test_region_reports_track_migrations(self, topology):
        cloud = RegionalCloud(config=_config(), topology=topology)
        cloud.run_until_complete()
        reports = cloud.region_reports()
        assert reports["a"]["migrated_out"] == len(cloud.migrations)
        assert reports["b"]["migrated_in"] == len(cloud.migrations)
        assert reports["a"]["migrated_in"] == 0

    def test_zero_rounds_reports_failures_instead(self, topology):
        cloud = RegionalCloud(
            config=_config(), topology=topology, max_migration_rounds=0
        )
        records = cloud.run_until_complete()
        assert cloud.migrations == []
        assert cloud.failed, "without migration rounds the killed jobs stay failed"
        for failure in cloud.failed:
            assert failure["regions_tried"] == ["a"]
        assert len(records) + len(cloud.failed) == 10
        # Terminal failures flow into the records manager's event stream.
        failed_events = [e for e in cloud.records.events if e.event == "failed"]
        assert len(failed_events) == len(cloud.failed)

    def test_rejects_multi_region_tenants_and_scenario(self, topology):
        with pytest.raises(ValueError):
            RegionalCloud(config=_config(tenants="single"), topology=topology)
        with pytest.raises(ValueError):
            RegionalCloud(config=_config(scenario="drift"), topology=topology)

    def test_cannot_run_twice(self, topology):
        cloud = RegionalCloud(config=_config(), topology=topology)
        cloud.run_until_complete()
        with pytest.raises(RuntimeError):
            cloud.run_until_complete()
