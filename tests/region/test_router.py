"""The routing tier: policy behaviour, downtime avoidance and fallback."""

import pytest

from repro.circuits.circuit import CircuitSpec
from repro.cloud.config import SimulationConfig
from repro.cloud.qjob import QJob
from repro.region import ROUTING_POLICIES, Router, get_topology


def _job(num_qubits, arrival=0.0, job_id=0, depth=10, shots=100):
    circuit = CircuitSpec(
        num_qubits=num_qubits,
        depth=depth,
        num_shots=shots,
        num_two_qubit_gates=num_qubits,
    )
    return QJob(job_id=job_id, circuit=circuit, arrival_time=arrival)


def _router(topology_name, policy):
    return Router(get_topology(topology_name), SimulationConfig(num_jobs=1), policy=policy)


class TestRouterConstruction:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            _router("dual", "fastest-first")

    def test_inherits_fleet_for_empty_pools(self):
        config = SimulationConfig(num_jobs=1)
        router = Router(get_topology("single"), config, policy="locality")
        state = router.states["global"]
        assert state.device_names == tuple(config.device_names)

    def test_job_cost(self):
        assert Router.job_cost(_job(10, depth=5, shots=20)) == 1000.0


class TestLocality:
    def test_serves_the_origin_region(self):
        router = _router("dual", "locality")
        assert router.assign(_job(100, job_id=0), origin="us-east") == "us-east"
        assert router.assign(_job(100, job_id=1), origin="eu-central") == "eu-central"

    def test_spills_when_origin_excluded(self):
        router = _router("dual", "locality")
        target = router.assign(
            _job(100), origin="eu-central", exclude=frozenset({"eu-central"})
        )
        assert target == "us-east"

    def test_spills_when_origin_cannot_fit(self):
        # The dual EU pool is 2x127 = 254 qubits; the US pool 3x127 = 381.
        router = _router("dual", "locality")
        assert router.assign(_job(300), origin="eu-central") == "us-east"


class TestDowntime:
    def test_avoids_down_region(self):
        # region-outage: us-east is fleet-wide down for [0, 1800).
        router = _router("region-outage", "locality")
        assert router.assign(_job(100, arrival=100.0), origin="us-east") == "eu-central"

    def test_serves_origin_after_the_window(self):
        router = _router("region-outage", "locality")
        assert router.assign(_job(100, arrival=2000.0), origin="us-east") == "us-east"


class TestFallback:
    def test_impossible_job_goes_to_the_widest_pool(self):
        # No pool fits 500 qubits; the widest (us-east, 381) at least queues it.
        router = _router("dual", "locality")
        assert router.assign(_job(500), origin="eu-central") == "us-east"


class TestLeastLoaded:
    def test_ignores_origin(self):
        # The EU pool's capacity (2x 220k-CLOPS devices) dwarfs the US pool's,
        # so an empty router sends the first job there regardless of origin.
        router = _router("dual", "least-loaded")
        assert router.assign(_job(100), origin="us-east") == "eu-central"

    def test_load_accumulates_in_the_report(self):
        router = _router("dual", "least-loaded")
        job = _job(100)
        target = router.assign(job)
        report = router.load_report()
        assert report[target]["routed_load"] == Router.job_cost(job)
        assert report[target]["normalised_load"] > 0.0


class TestRoundRobin:
    def test_cycles_in_topology_order(self):
        router = _router("global-triad", "round-robin")
        names = get_topology("global-triad").region_names
        targets = [router.assign(_job(100, job_id=i)) for i in range(4)]
        assert targets == names + [names[0]]

    def test_skips_down_regions(self):
        router = _router("region-outage", "round-robin")
        targets = {router.assign(_job(100, job_id=i, arrival=10.0)) for i in range(4)}
        assert targets == {"eu-central"}


class TestDeterminism:
    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    def test_same_stream_same_assignment(self, policy):
        jobs = [_job(50 + 17 * i, job_id=i, depth=5 + i, shots=100 + i) for i in range(12)]
        origins = ["eu-central" if i % 3 else "us-east" for i in range(12)]
        first = _router("global-triad", policy)
        second = _router("global-triad", policy)
        a = [first.assign(job, origin=o) for job, o in zip(jobs, origins)]
        b = [second.assign(job, origin=o) for job, o in zip(jobs, origins)]
        assert a == b
        assert set(a) <= set(get_topology("global-triad").region_names)
