"""Streaming records through the merged cross-shard stream (O(1) memory)."""

import json

import pytest

from repro.cloud.config import SimulationConfig
from repro.cloud.records_stream import StreamingRecordsManager
from repro.region import RegionalCloud


def _config(**overrides):
    payload = dict(num_jobs=12, policy="fidelity", seed=5, regions="dual")
    payload.update(overrides)
    return SimulationConfig(**payload)


class TestStreamingMerge:
    def test_aggregates_match_the_stored_run(self):
        baseline = RegionalCloud(config=_config())
        base_records = baseline.run_until_complete()
        assert len(base_records) == 12

        stream = StreamingRecordsManager()
        cloud = RegionalCloud(config=_config(), records=stream)
        returned = cloud.run_until_complete()
        # Streaming keeps no per-record storage: the merge aggregates instead.
        assert returned == []
        assert stream.completed == 12
        expected = sum(r.fidelity for r in base_records) / len(base_records)
        assert stream.mean_fidelity == pytest.approx(expected)

        aggregates = stream.aggregates()
        assert aggregates["completed"] == 12
        assert aggregates["turnaround_p50"] is not None
        assert aggregates["turnaround_p50"] > 0.0

    def test_jsonl_export_round_trips(self, tmp_path):
        path = tmp_path / "records.jsonl"
        with StreamingRecordsManager(export_path=str(path)) as stream:
            RegionalCloud(config=_config(), records=stream).run_until_complete()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == 12
        assert [row["job_id"] for row in rows] == sorted(row["job_id"] for row in rows)

    def test_failures_flow_into_the_event_counters(self):
        from repro.dynamics import MaintenanceWindow, Scenario, register_scenario
        from repro.dynamics.presets import _REGISTRY as _SCENARIOS
        from repro.region import RegionSpec, RegionTopology

        register_scenario(
            Scenario(
                name="stream-test-kill",
                maintenance=(
                    MaintenanceWindow(
                        start=50.0, duration=50_000.0, device=None, kill_running=True
                    ),
                ),
            )
        )
        try:
            topology = RegionTopology(
                name="stream-spill",
                regions=(
                    RegionSpec(
                        name="a",
                        device_names=("ibm_strasbourg", "ibm_brussels"),
                        workload_share=0.5,
                        scenario="stream-test-kill",
                    ),
                    RegionSpec(
                        name="b",
                        device_names=("ibm_kyiv", "ibm_quebec", "ibm_kawasaki"),
                        workload_share=0.5,
                    ),
                ),
            )
            stream = StreamingRecordsManager()
            cloud = RegionalCloud(
                config=_config(regions=None, num_jobs=10, max_requeues=0, seed=7),
                topology=topology,
                records=stream,
                max_migration_rounds=0,
            )
            cloud.run_until_complete()
        finally:
            _SCENARIOS.pop("stream-test-kill", None)
        assert cloud.failed
        assert stream.event_counts.get("failed", 0) == len(cloud.failed)
        assert stream.completed + len(cloud.failed) == 10
