"""A one-region RegionalCloud must be byte-identical to the plain cloud.

The acceptance regression of the region subsystem: wrapping the plain
single-broker cloud in the regional machinery (router, shard config, record
merge) must not change a single record field, for any routing policy, with
or without an explicit workload, and with world-dynamics scenarios attached.
"""

import pytest

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.region import ROUTING_POLICIES, RegionalCloud


def _dicts(records):
    return [r.as_dict() for r in records]


def _plain(config_kwargs):
    env = QCloudSimEnv(SimulationConfig(**config_kwargs))
    return _dicts(env.run_until_complete())


class TestSingleRegionEquivalence:
    @pytest.mark.parametrize("routing", ROUTING_POLICIES)
    def test_generated_workload_identical(self, routing):
        config = SimulationConfig(
            num_jobs=8, policy="fidelity", seed=11, regions="single", routing=routing
        )
        cloud = RegionalCloud(config=config)
        records = cloud.run_until_complete()
        assert _dicts(records) == _plain(dict(num_jobs=8, policy="fidelity", seed=11))
        assert cloud.failed == []
        assert cloud.migrations == []

    def test_explicit_workload_identical(self):
        from repro.cloud.job_generator import generate_synthetic_jobs

        jobs = generate_synthetic_jobs(num_jobs=6, seed=4)
        config = SimulationConfig(num_jobs=6, policy="speed", seed=4)
        cloud = RegionalCloud(config=config, topology="single", jobs=jobs)
        records = cloud.run_until_complete()
        env = QCloudSimEnv(config, jobs=[job.clone() for job in jobs])
        assert _dicts(records) == _dicts(env.run_until_complete())

    def test_scenario_passes_through(self):
        config = SimulationConfig(num_jobs=6, policy="fidelity", seed=9, scenario="drift")
        cloud = RegionalCloud(config=config, topology="single")
        records = cloud.run_until_complete()
        env = QCloudSimEnv(SimulationConfig(num_jobs=6, policy="fidelity", seed=9,
                                            scenario="drift"))
        assert _dicts(records) == _dicts(env.run_until_complete())

    def test_summary_matches_plain_summary(self):
        from repro.metrics.aggregate import summarize_records

        config = SimulationConfig(num_jobs=6, policy="speed", seed=2, regions="single")
        cloud = RegionalCloud(config=config)
        cloud.run_until_complete()
        env = QCloudSimEnv(SimulationConfig(num_jobs=6, policy="speed", seed=2))
        plain = summarize_records(env.run_until_complete(), strategy="speed")
        assert cloud.summary() == plain

    def test_region_report_accounts_every_job(self):
        config = SimulationConfig(num_jobs=6, policy="speed", seed=2, regions="single")
        cloud = RegionalCloud(config=config)
        cloud.run_until_complete()
        report = cloud.region_reports()["global"]
        assert report["served_jobs"] == 6
        assert report["completed"] == 6
        assert report["failed"] == 0
