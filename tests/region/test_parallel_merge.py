"""Process-parallel shard execution must equal serial shard execution.

A shard is a pure function of its picklable task (jobs are cloned before
simulation, floats survive pickling bit-for-bit), so running the regions as
real parallel processes must produce the same merged, globally job-id-ordered
record stream as the default serial execution — the second acceptance
regression of the region subsystem.
"""

import pytest

from repro.cloud.config import SimulationConfig
from repro.engine import ExperimentRunner
from repro.region import RegionalCloud


def _run(preset, runner=None):
    config = SimulationConfig(num_jobs=10, policy="fidelity", seed=3, regions=preset)
    cloud = RegionalCloud(config=config, runner=runner)
    records = cloud.run_until_complete()
    return cloud, records


class TestParallelMerge:
    @pytest.mark.parametrize("preset", ("dual", "region-outage", "follow-the-sun"))
    def test_process_backend_matches_serial(self, preset):
        serial_cloud, serial_records = _run(preset)
        process_cloud, process_records = _run(
            preset, runner=ExperimentRunner(backend="process", max_workers=2)
        )
        assert [r.as_dict() for r in process_records] == [
            r.as_dict() for r in serial_records
        ]
        assert process_cloud.origin_of == serial_cloud.origin_of
        assert process_cloud.region_of == serial_cloud.region_of
        assert process_cloud.migrations == serial_cloud.migrations
        assert process_cloud.failed == serial_cloud.failed
        assert process_cloud.region_reports() == serial_cloud.region_reports()

    def test_merged_stream_is_globally_ordered(self):
        _, records = _run("dual")
        ids = [r.job_id for r in records]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_every_job_is_accounted_for(self):
        cloud, records = _run("dual")
        assert len(records) + len(cloud.failed) == 10
        reports = cloud.region_reports()
        assert sum(r["origin_jobs"] for r in reports.values()) == 10
        assert sum(r["served_jobs"] for r in reports.values()) == 10
