"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.config import SimulationConfig
from repro.des.environment import Environment
from repro.hardware.backends import build_default_fleet, get_device_profile


@pytest.fixture
def env() -> Environment:
    """A fresh discrete-event simulation environment."""
    return Environment()


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded NumPy random generator."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def default_fleet():
    """The paper's five-device fleet (session-scoped: profiles are immutable)."""
    return build_default_fleet()


@pytest.fixture(scope="session")
def small_profile():
    """A single small device profile (10 qubits) for cheap device-level tests."""
    return get_device_profile("ibm_strasbourg", num_qubits=10, quantum_volume=32)


@pytest.fixture
def fast_config() -> SimulationConfig:
    """A small configuration for quick end-to-end simulations."""
    return SimulationConfig(num_jobs=12, seed=7)
