"""CLI coverage for the scenario subsystem."""

import json

import pytest

from repro.cli import main

ALL_PRESETS = ("static", "drift", "flaky-fleet", "rush-hour", "black-friday")


class TestScenariosCommand:
    def test_lists_presets(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for preset in ALL_PRESETS:
            assert preset in out
        assert "mmpp" in out  # black-friday's traffic model column


class TestSimulateScenario:
    @pytest.mark.parametrize("preset", ALL_PRESETS)
    def test_simulate_runs_every_preset(self, preset, capsys):
        assert main(["simulate", "-n", "8", "--scenario", preset]) == 0
        out = capsys.readouterr().out
        assert "jobs completed: 8" in out

    def test_unknown_scenario_fails(self):
        with pytest.raises(KeyError):
            main(["simulate", "-n", "4", "--scenario", "nope"])

    def test_trace_record_and_replay(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        assert main(["simulate", "-n", "8", "--scenario", "flaky-fleet",
                     "--trace", trace]) == 0
        first = capsys.readouterr().out
        assert f"wrote scenario trace to {trace}" in first

        # Replaying the trace reproduces the same summary line.
        assert main(["simulate", "-n", "8", "--scenario", trace]) == 0
        second = capsys.readouterr().out

        def summary_lines(text):
            return [line for line in text.splitlines()
                    if line.startswith(("T_sim", "fidelity", "T_comm", "devices/job"))]

        assert summary_lines(second) == summary_lines(first)

    def test_trace_of_plain_run(self, tmp_path, capsys):
        trace = str(tmp_path / "plain.jsonl")
        assert main(["simulate", "-n", "5", "--trace", trace]) == 0
        lines = [json.loads(line) for line in open(trace)]
        assert lines[0]["type"] == "header"


class TestCompareScenario:
    def test_compare_with_scenario(self, capsys):
        assert main(["compare", "-n", "8", "--scenario", "rush-hour",
                     "--strategies", "speed", "fair"]) == 0
        out = capsys.readouterr().out
        assert "speed" in out and "fair" in out


class TestSweepScenario:
    def test_sweep_over_scenario_field(self, capsys):
        assert main(["sweep", "--param", "scenario",
                     "--values", "static", "drift", "-n", "6"]) == 0
        out = capsys.readouterr().out
        assert "static" in out and "drift" in out


class TestCheckpointingFlag:
    def test_simulate_with_checkpointing(self, capsys):
        assert main(["simulate", "-n", "8", "--scenario", "flaky-fleet",
                     "--checkpointing"]) == 0
        out = capsys.readouterr().out
        assert "jobs completed: 8" in out

    def test_serve_with_checkpointing(self, capsys):
        assert main(["serve", "-n", "8", "--tenants", "single",
                     "--checkpointing"]) == 0
        out = capsys.readouterr().out
        assert "jobs completed: 8" in out

    def test_sweep_over_checkpointing_axis(self, capsys):
        """``checkpointing`` is sweepable as a boolean grid axis."""
        assert main(["sweep", "--param", "checkpointing",
                     "--values", "false", "true", "-n", "6"]) == 0
        out = capsys.readouterr().out
        assert "False" in out and "True" in out

    def test_sweep_rejects_non_boolean_values(self):
        with pytest.raises(SystemExit, match="must be bool"):
            main(["sweep", "--param", "checkpointing",
                  "--values", "maybe", "-n", "6"])
