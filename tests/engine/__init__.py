"""Test package."""
