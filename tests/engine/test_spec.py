"""Unit tests for experiment specs, cells and seed derivation."""

import pytest

from repro.cloud.config import SimulationConfig
from repro.engine import ExperimentCell, ExperimentSpec, PolicySpec, derive_seed
from repro.metrics.error_score import ErrorScoreWeights


class TestDeriveSeed:
    def test_deterministic_across_calls(self):
        assert derive_seed(2025, "replicate", 3) == derive_seed(2025, "replicate", 3)

    def test_sensitive_to_every_component(self):
        base = derive_seed(2025, "replicate", 0)
        assert derive_seed(2024, "replicate", 0) != base
        assert derive_seed(2025, "replicate", 1) != base
        assert derive_seed(2025, "training", 0) != base

    def test_range(self):
        for r in range(32):
            seed = derive_seed(0, r)
            assert 0 <= seed < 2**63


class TestPolicySpec:
    def test_build_from_registry(self):
        policy = PolicySpec("speed").build()
        assert policy.name == "speed"

    def test_build_with_kwargs(self):
        weights = ErrorScoreWeights(1.0, 0.0, 0.0)
        policy = PolicySpec("fidelity", {"weights": weights}).build()
        assert policy.weights == weights

    def test_fingerprint_stable_and_content_sensitive(self):
        a = PolicySpec("fidelity", {"weights": ErrorScoreWeights(0.5, 0.3, 0.2)})
        b = PolicySpec("fidelity", {"weights": ErrorScoreWeights(0.5, 0.3, 0.2)})
        c = PolicySpec("fidelity", {"weights": ErrorScoreWeights(1.0, 0.0, 0.0)})
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


class TestExperimentCell:
    def test_cache_key_stable(self):
        config = SimulationConfig(num_jobs=10)
        a = ExperimentCell(index=0, strategy="speed", seed=1, config=config)
        b = ExperimentCell(index=5, strategy="speed", seed=1, config=config)
        # The grid position does not change the content identity.
        assert a.cache_key() == b.cache_key()

    def test_cache_key_content_sensitive(self):
        config = SimulationConfig(num_jobs=10)
        base = ExperimentCell(index=0, strategy="speed", seed=1, config=config)
        other_seed = ExperimentCell(index=0, strategy="speed", seed=2, config=config)
        other_cfg = ExperimentCell(
            index=0, strategy="speed", seed=1, config=SimulationConfig(num_jobs=11)
        )
        assert base.cache_key() != other_seed.cache_key()
        assert base.cache_key() != other_cfg.cache_key()

    def test_prebuilt_policy_is_uncacheable(self):
        from repro.scheduling.speed import SpeedPolicy

        cell = ExperimentCell(
            index=0, strategy="speed", seed=1, config=SimulationConfig(num_jobs=10),
            policy=SpeedPolicy(),
        )
        assert cell.cache_key() is None


class TestExperimentSpec:
    def test_grid_size(self):
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=10),
            strategies=("speed", "fair"),
            replicates=3,
            overrides=({}, {"comm_fidelity_penalty": 0.9}),
        )
        assert len(spec) == 12
        assert len(spec.cells()) == 12

    def test_single_replicate_uses_base_seed(self):
        spec = ExperimentSpec(base_config=SimulationConfig(num_jobs=10, seed=77))
        assert spec.replicate_seeds() == [77]

    def test_replicate_seeds_deterministic_and_shared_across_strategies(self):
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=10, seed=5),
            strategies=("speed", "fidelity"),
            replicates=2,
        )
        again = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=10, seed=5),
            strategies=("speed", "fidelity"),
            replicates=2,
        )
        assert spec.replicate_seeds() == again.replicate_seeds()
        cells = spec.cells()
        by_replicate = {}
        for cell in cells:
            by_replicate.setdefault(cell.replicate, set()).add(cell.seed)
        # All strategies inside one replicate share the workload seed.
        assert all(len(seeds) == 1 for seeds in by_replicate.values())
        # Different replicates get different seeds.
        assert len({next(iter(s)) for s in by_replicate.values()}) == 2

    def test_explicit_seeds_override_derivation(self):
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=10), seeds=(11, 22)
        )
        assert spec.replicate_seeds() == [11, 22]

    def test_overrides_applied_to_cell_config(self):
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=10),
            overrides=({"comm_fidelity_penalty": 0.9},),
        )
        (cell,) = spec.cells()
        assert cell.config.comm_fidelity_penalty == 0.9

    def test_cell_config_policy_matches_strategy(self):
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=10), strategies=("fair",)
        )
        (cell,) = spec.cells()
        assert cell.config.policy == "fair"
        assert cell.strategy == "fair"

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSpec(base_config=SimulationConfig(num_jobs=10), strategies=())
        with pytest.raises(ValueError):
            ExperimentSpec(base_config=SimulationConfig(num_jobs=10), replicates=0)
        with pytest.raises(ValueError):
            ExperimentSpec(base_config=SimulationConfig(num_jobs=10), overrides=())
