"""The experiment engine's scenario grid axis."""

import pytest

from repro.cloud.config import SimulationConfig
from repro.engine import ExperimentRunner, ExperimentSpec


class TestScenarioAxis:
    def test_cells_cross_scenarios_with_strategies(self):
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=5),
            strategies=("speed", "fair"),
            scenarios=("static", "drift"),
        )
        cells = spec.cells()
        assert len(spec) == 4
        assert len(cells) == 4
        assert [c.config.scenario for c in cells] == ["static", "static", "drift", "drift"]
        assert [c.strategy for c in cells] == ["speed", "fair", "speed", "fair"]
        assert [c.index for c in cells] == [0, 1, 2, 3]

    def test_none_entry_clears_scenario(self):
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=5, scenario="drift"),
            scenarios=(None, "rush-hour"),
        )
        assert [c.config.scenario for c in spec.cells()] == [None, "rush-hour"]

    def test_omitted_axis_keeps_base_scenario(self):
        spec = ExperimentSpec(base_config=SimulationConfig(num_jobs=5, scenario="drift"))
        assert [c.config.scenario for c in spec.cells()] == ["drift"]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(base_config=SimulationConfig(num_jobs=5), scenarios=())

    def test_cache_keys_differ_by_scenario(self):
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=5),
            scenarios=("static", "drift"),
        )
        keys = [cell.cache_key() for cell in spec.cells()]
        assert len(set(keys)) == len(keys)

    def test_cache_key_tracks_scenario_content(self, tmp_path):
        """Re-recording a trace (or re-registering a custom scenario) under
        the same name must change the cache key — name-only keys would let
        the result store return stale results."""
        from repro.cloud.environment import QCloudSimEnv
        from repro.dynamics import DriftSpec, Scenario, register_scenario
        from repro.dynamics.presets import _REGISTRY
        from repro.engine.spec import ExperimentCell

        def key_for(scenario_name):
            config = SimulationConfig(num_jobs=5, scenario=scenario_name)
            return ExperimentCell(
                index=0, strategy="speed", seed=1, config=config
            ).cache_key()

        # Trace path: same file name, different content.
        trace = tmp_path / "run.jsonl"
        env = QCloudSimEnv(SimulationConfig(num_jobs=3, policy="speed"))
        env.run_until_complete()
        env.save_trace(str(trace))
        key_a = key_for(str(trace))
        env2 = QCloudSimEnv(SimulationConfig(num_jobs=4, policy="speed"))
        env2.run_until_complete()
        env2.save_trace(str(trace))
        key_b = key_for(str(trace))
        assert key_a is not None and key_a != key_b

        # Registered scenario: same name, different specs.
        try:
            register_scenario(Scenario(name="cache-test", drift=DriftSpec(interval=100.0)))
            key_c = key_for("cache-test")
            register_scenario(Scenario(name="cache-test", drift=DriftSpec(interval=200.0)))
            key_d = key_for("cache-test")
            assert key_c is not None and key_c != key_d
        finally:
            _REGISTRY.pop("cache-test", None)

        # Unresolvable references are uncacheable, not wrongly cached.
        assert key_for(str(tmp_path / "missing.jsonl")) is None
        assert key_for("not-a-registered-scenario") is None

    def test_runner_executes_scenario_grid(self):
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=8),
            strategies=("speed",),
            scenarios=("static", "flaky-fleet"),
        )
        outcome = ExperimentRunner().run(spec)
        assert len(outcome) == 2
        static, flaky = outcome.results
        assert static.summary.num_jobs == 8
        assert flaky.summary.num_jobs == 8
        # The flaky world perturbs the schedule relative to the static one.
        assert static.summary.total_simulation_time != flaky.summary.total_simulation_time

    def test_scenario_traffic_flows_through_runner(self):
        """execute_cell defers workload generation to the environment, so a
        traffic-shaping scenario changes the arrivals inside a worker cell."""
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=8),
            strategies=("speed",),
            scenarios=("rush-hour",),
        )
        result = ExperimentRunner().run(spec).results[0]
        arrivals = [r.arrival_time for r in result.records]
        assert any(t > 0 for t in arrivals)  # not the default batch-at-zero
