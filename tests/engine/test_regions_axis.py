"""The experiment engine's regions grid axis."""

import pytest

from repro.cloud.config import SimulationConfig
from repro.engine import ExperimentRunner, ExperimentSpec


class TestRegionsAxis:
    def test_regions_axis_is_outermost(self):
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=5),
            strategies=("speed", "fair"),
            regions=(None, "dual"),
        )
        cells = spec.cells()
        assert len(spec) == 4
        assert [c.config.regions for c in cells] == [None, None, "dual", "dual"]
        assert [c.strategy for c in cells] == ["speed", "fair", "speed", "fair"]

    def test_none_entry_clears_regions(self):
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=5, regions="dual"),
            regions=(None, "single"),
        )
        assert [c.config.regions for c in spec.cells()] == [None, "single"]

    def test_omitted_axis_keeps_base_regions(self):
        spec = ExperimentSpec(base_config=SimulationConfig(num_jobs=5, regions="single"))
        assert [c.config.regions for c in spec.cells()] == ["single"]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(base_config=SimulationConfig(num_jobs=5), regions=())

    def test_cache_keys_differ_by_regions(self):
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=5),
            regions=(None, "single", "dual"),
        )
        keys = [cell.cache_key() for cell in spec.cells()]
        assert None not in keys
        assert len(set(keys)) == len(keys)

    def test_cache_key_tracks_topology_content(self):
        """Re-registering a topology under the same name must change the
        cache key — name-only keys would let the store return stale results."""
        from repro.engine.spec import ExperimentCell
        from repro.region import RegionSpec, RegionTopology, register_topology
        from repro.region.presets import _REGISTRY

        def key_for(regions_name):
            config = SimulationConfig(num_jobs=5, regions=regions_name)
            return ExperimentCell(
                index=0, strategy="speed", seed=1, config=config
            ).cache_key()

        try:
            register_topology(
                RegionTopology(
                    name="cache-test",
                    regions=(RegionSpec(name="eu", device_names=("ibm_kyiv",)),),
                )
            )
            key_a = key_for("cache-test")
            register_topology(
                RegionTopology(
                    name="cache-test",
                    regions=(RegionSpec(name="eu", device_names=("ibm_quebec",)),),
                )
            )
            key_b = key_for("cache-test")
            assert key_a is not None and key_a != key_b
        finally:
            _REGISTRY.pop("cache-test", None)

        # Unresolvable topologies are uncacheable, not wrongly cached.
        assert key_for("not-a-registered-topology") is None

    def test_runner_executes_regions_grid(self):
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=6, seed=13),
            strategies=("speed",),
            regions=(None, "dual"),
        )
        outcome = ExperimentRunner().run(spec)
        assert len(outcome) == 2
        plain, regional = outcome.results
        assert plain.summary.num_jobs == 6
        assert regional.summary.num_jobs == 6
        # The sharded run generates per-region workloads, so the schedules
        # legitimately differ from the plain single-broker run.
        assert len(regional.records) == 6

    def test_single_region_cell_matches_plain_cell(self):
        base = SimulationConfig(num_jobs=6, seed=13)
        plain = ExperimentRunner().run(
            ExperimentSpec(base_config=base, strategies=("speed",))
        ).results[0]
        single = ExperimentRunner().run(
            ExperimentSpec(base_config=base, strategies=("speed",), regions=("single",))
        ).results[0]
        assert [r.as_dict() for r in single.records] == [
            r.as_dict() for r in plain.records
        ]
        assert single.summary == plain.summary
