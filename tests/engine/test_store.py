"""Tests for the result store: round-trips, cache semantics, exports."""

import csv
import json
import os

import pytest

from repro.cloud.config import SimulationConfig
from repro.engine import ExperimentRunner, ExperimentSpec, ResultStore, execute_cell


@pytest.fixture(scope="module")
def cell_and_result():
    (cell,) = ExperimentSpec(
        base_config=SimulationConfig(num_jobs=8, seed=3), strategies=("speed",)
    ).cells()
    return cell, execute_cell(cell)


class TestCellRoundTrip:
    def test_summary_and_records_round_trip(self, tmp_path, cell_and_result):
        cell, result = cell_and_result
        store = ResultStore(str(tmp_path))
        key = cell.cache_key()
        store.save_cell(key, cell, result.summary, result.records)

        loaded = store.load_cell(key)
        assert loaded is not None
        summary, records = loaded
        assert summary == result.summary
        assert records == result.records

    def test_miss_returns_none(self, tmp_path):
        assert ResultStore(str(tmp_path)).load_cell("0" * 64) is None

    def test_corrupt_cell_is_a_miss(self, tmp_path, cell_and_result):
        cell, result = cell_and_result
        store = ResultStore(str(tmp_path))
        key = cell.cache_key()
        path = store.save_cell(key, cell, result.summary, result.records)
        with open(path, "w") as fh:
            fh.write("{not json")
        assert store.load_cell(key) is None

    def test_keep_records_false_drops_records(self, tmp_path, cell_and_result):
        cell, result = cell_and_result
        store = ResultStore(str(tmp_path), keep_records=False)
        key = cell.cache_key()
        store.save_cell(key, cell, result.summary, result.records)
        summary, records = store.load_cell(key)
        assert summary == result.summary
        assert records == []

    def test_contains_len_clear(self, tmp_path, cell_and_result):
        cell, result = cell_and_result
        store = ResultStore(str(tmp_path))
        key = cell.cache_key()
        assert key not in store
        assert len(store) == 0
        store.save_cell(key, cell, result.summary, result.records)
        assert key in store
        assert len(store) == 1
        assert store.clear() == 1
        assert len(store) == 0


class TestSummaryExports:
    def test_csv_and_json(self, tmp_path):
        store = ResultStore(str(tmp_path))
        runner = ExperimentRunner(store=store)
        result = runner.run(
            ExperimentSpec(
                base_config=SimulationConfig(num_jobs=8, seed=3),
                strategies=("speed", "fair"),
            )
        )
        rows = result.summary_rows()

        csv_path = store.write_summaries_csv(rows)
        with open(csv_path) as fh:
            parsed = list(csv.DictReader(fh))
        assert len(parsed) == 2
        assert {row["strategy"] for row in parsed} == {"speed", "fair"}

        json_path = store.write_summaries_json(rows)
        with open(json_path) as fh:
            assert len(json.load(fh)) == 2

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(str(tmp_path)).write_summaries_csv([])
