"""Tests for the experiment runner: backends, equivalence, fail-fast."""

import pytest

from repro.cloud.config import SimulationConfig
from repro.engine import (
    ExperimentCell,
    ExperimentRunner,
    ExperimentSpec,
    PolicySpec,
    ResultStore,
    execute_cell,
)
from repro.metrics.error_score import ErrorScoreWeights


def _small_spec(**kwargs):
    defaults = dict(
        base_config=SimulationConfig(num_jobs=12, seed=7),
        strategies=("speed", "fidelity", "fair"),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


# Module-level so the process backend can pickle it.
def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"boom {x}")


class TestMap:
    def test_serial_map_in_order(self):
        assert ExperimentRunner().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_process_map_in_order(self):
        runner = ExperimentRunner(backend="process", max_workers=2)
        assert runner.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_serial_fail_fast(self):
        with pytest.raises(RuntimeError, match="boom"):
            ExperimentRunner().map(_boom, [1, 2])

    def test_process_fail_fast(self):
        runner = ExperimentRunner(backend="process", max_workers=2)
        with pytest.raises(RuntimeError, match="boom"):
            runner.map(_boom, [1, 2, 3, 4])

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            ExperimentRunner(backend="threads")
        with pytest.raises(ValueError):
            ExperimentRunner(max_workers=0)


class TestExecuteCell:
    def test_summary_matches_records(self):
        (cell,) = _small_spec(strategies=("speed",)).cells()
        result = execute_cell(cell)
        assert result.summary.num_jobs == 12
        assert len(result.records) == 12
        assert result.summary.strategy == "speed"

    def test_policy_spec_cell(self):
        (cell,) = _small_spec(strategies=("fidelity",)).cells()
        cell = ExperimentCell(
            index=0,
            strategy="fidelity",
            seed=cell.seed,
            config=cell.config,
            policy_spec=PolicySpec("fidelity", {"weights": ErrorScoreWeights(1.0, 0.0, 0.0)}),
        )
        result = execute_cell(cell)
        assert result.summary.num_jobs == 12


class TestBackendEquivalence:
    def test_parallel_rows_identical_to_serial(self):
        """The satellite guarantee: byte-identical summaries across backends."""
        spec = _small_spec(replicates=2)
        serial = ExperimentRunner(backend="serial").run(spec)
        parallel = ExperimentRunner(backend="process", max_workers=2).run(spec)

        assert len(serial) == len(parallel) == 6
        for s, p in zip(serial, parallel):
            assert s.cell == p.cell
            # StrategySummary is a frozen dataclass of floats: equality here
            # means bit-for-bit identical fields.
            assert s.summary == p.summary
            assert s.records == p.records

    def test_run_twice_is_deterministic(self):
        spec = _small_spec(replicates=2)
        first = ExperimentRunner().run(spec)
        second = ExperimentRunner().run(spec)
        assert [r.summary for r in first] == [r.summary for r in second]
        assert [r.cell.seed for r in first] == [r.cell.seed for r in second]


class TestStoreIntegration:
    def test_second_run_hits_cache(self, tmp_path):
        store = ResultStore(str(tmp_path / "results"))
        spec = _small_spec()
        runner = ExperimentRunner(store=store)

        first = runner.run(spec)
        assert all(not r.cached for r in first)
        assert len(store) == 3

        second = runner.run(spec)
        assert all(r.cached for r in second)
        assert [r.summary for r in second] == [r.summary for r in first]
        assert [r.records for r in second] == [r.records for r in first]

    def test_changed_config_misses_cache(self, tmp_path):
        store = ResultStore(str(tmp_path / "results"))
        runner = ExperimentRunner(store=store)
        runner.run(_small_spec(strategies=("speed",)))
        changed = runner.run(
            _small_spec(
                strategies=("speed",),
                overrides=({"comm_fidelity_penalty": 0.9},),
            )
        )
        assert all(not r.cached for r in changed)

    def test_uncacheable_cells_always_run(self, tmp_path):
        from repro.scheduling.speed import SpeedPolicy

        store = ResultStore(str(tmp_path / "results"))
        runner = ExperimentRunner(store=store)
        spec = _small_spec(strategies=("speed",), policies={"speed": SpeedPolicy()})
        first = runner.run(spec)
        second = runner.run(spec)
        assert not first.results[0].cached
        assert not second.results[0].cached
        assert first.results[0].summary == second.results[0].summary
