"""Unit tests for the named workloads."""

import pytest

from repro.workloads import case_study_jobs, ghz_sweep_jobs, mixed_tenant_jobs, qaoa_portfolio_jobs


class TestCaseStudyWorkload:
    def test_matches_paper_parameters(self):
        jobs = case_study_jobs(num_jobs=50, seed=1)
        assert len(jobs) == 50
        for job in jobs:
            assert 130 <= job.num_qubits <= 250
            assert 5 <= job.depth <= 20
            assert 10_000 <= job.num_shots <= 100_000

    def test_seeded(self):
        assert [j.circuit for j in case_study_jobs(10, seed=5)] == [
            j.circuit for j in case_study_jobs(10, seed=5)
        ]


class TestGHZSweep:
    def test_default_widths_exceed_single_device(self):
        jobs = ghz_sweep_jobs()
        assert all(j.num_qubits > 127 for j in jobs)
        assert [j.num_qubits for j in jobs] == list(range(130, 251, 10))

    def test_ghz_structure(self):
        job = ghz_sweep_jobs(widths=[140])[0]
        assert job.num_two_qubit_gates == 139
        assert job.depth == 140

    def test_arrival_spacing(self):
        jobs = ghz_sweep_jobs(widths=[130, 140, 150], arrival_spacing=10.0)
        assert [j.arrival_time for j in jobs] == [0.0, 10.0, 20.0]


class TestQAOAPortfolio:
    def test_default_portfolio(self):
        jobs = qaoa_portfolio_jobs()
        assert len(jobs) == 6
        assert all(j.num_qubits >= 135 for j in jobs)
        assert all(j.num_two_qubit_gates > 0 for j in jobs)

    def test_reproducible(self):
        j1 = qaoa_portfolio_jobs(seed=3)
        j2 = qaoa_portfolio_jobs(seed=3)
        assert [j.circuit for j in j1] == [j.circuit for j in j2]


class TestMixedTenant:
    def test_composition(self):
        jobs = mixed_tenant_jobs(num_jobs=30, seed=0)
        assert len(jobs) == 30
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)
        kinds = {j.circuit.name.split("_")[0] for j in jobs}
        assert "ghz" in kinds
        assert any(name.startswith("qaoa") for name in (j.circuit.name for j in jobs))

    def test_all_jobs_need_partitioning(self):
        jobs = mixed_tenant_jobs(num_jobs=15, seed=2)
        assert all(j.num_qubits > 127 for j in jobs)

    def test_validation(self):
        with pytest.raises(ValueError):
            mixed_tenant_jobs(num_jobs=0)
