"""Test package."""
