"""Vectorised diurnal arrival generation (bulk_diurnal_arrival_times)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.arrivals import bulk_diurnal_arrival_times, diurnal_arrival_times

PARAMS = dict(base_rate=1.0, peak_rate=9.0, period=100.0)


class TestValidation:
    def test_nonpositive_num_jobs(self):
        with pytest.raises(ValueError):
            bulk_diurnal_arrival_times(np.random.default_rng(0), 0, **PARAMS)

    @pytest.mark.parametrize("override", [
        {"base_rate": 0.0},
        {"peak_rate": -1.0},
        {"period": 0.0},
    ])
    def test_nonpositive_rates(self, override):
        with pytest.raises(ValueError):
            bulk_diurnal_arrival_times(np.random.default_rng(0), 10, **{**PARAMS, **override})

    def test_peak_below_base(self):
        with pytest.raises(ValueError):
            bulk_diurnal_arrival_times(
                np.random.default_rng(0), 10, base_rate=5.0, peak_rate=1.0, period=100.0
            )

    def test_nonpositive_chunk_size(self):
        with pytest.raises(ValueError):
            bulk_diurnal_arrival_times(np.random.default_rng(0), 10, chunk_size=0, **PARAMS)


class TestProperties:
    def test_shape_monotone_nonnegative(self):
        times = bulk_diurnal_arrival_times(np.random.default_rng(1), 5_000, **PARAMS)
        assert times.shape == (5_000,)
        assert times.dtype == np.float64
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0.0

    def test_start_time_offset(self):
        times = bulk_diurnal_arrival_times(
            np.random.default_rng(1), 100, start_time=500.0, **PARAMS
        )
        assert times[0] >= 500.0

    def test_deterministic_given_seed(self):
        a = bulk_diurnal_arrival_times(np.random.default_rng(42), 2_000, **PARAMS)
        b = bulk_diurnal_arrival_times(np.random.default_rng(42), 2_000, **PARAMS)
        assert np.array_equal(a, b)

    def test_chunk_size_spans_multiple_chunks(self):
        # A tiny chunk forces many refill iterations; the trace must stay
        # well-formed (the chunking is an implementation detail).
        times = bulk_diurnal_arrival_times(
            np.random.default_rng(9), 1_000, chunk_size=64, **PARAMS
        )
        assert len(times) == 1_000
        assert np.all(np.diff(times) >= 0)

    def test_diurnal_modulation(self):
        # rate(t) troughs at t=0 and crests at t=period/2: the half-period
        # around the crest must hold clearly more arrivals than the one
        # around the trough.
        period = PARAMS["period"]
        times = bulk_diurnal_arrival_times(np.random.default_rng(7), 20_000, **PARAMS)
        phase = np.mod(times, period)
        crest = np.count_nonzero((phase >= 0.25 * period) & (phase < 0.75 * period))
        trough = len(times) - crest
        assert crest > 2.0 * trough

    def test_statistically_matches_scalar_generator(self):
        # Same process, different RNG consumption order: the bulk and scalar
        # traces must agree on the overall rate (span per arrival).
        n = 5_000
        bulk = bulk_diurnal_arrival_times(np.random.default_rng(11), n, **PARAMS)
        scalar = diurnal_arrival_times(np.random.default_rng(11), n, **PARAMS)
        assert bulk[-1] == pytest.approx(scalar[-1], rel=0.1)
