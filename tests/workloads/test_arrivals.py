"""The non-stationary arrival models and heavy-tail size distribution."""

import numpy as np
import pytest

from repro.dynamics import TrafficSpec
from repro.workloads.arrivals import (
    diurnal_arrival_times,
    fit_window,
    generate_traffic_jobs,
    heavy_tail_qubit_sizes,
    mmpp_arrival_times,
)


class TestMMPP:
    def test_monotone_and_deterministic(self):
        times_a = mmpp_arrival_times(np.random.default_rng(0), 200, 0.02, 0.5, 600.0, 60.0)
        times_b = mmpp_arrival_times(np.random.default_rng(0), 200, 0.02, 0.5, 600.0, 60.0)
        assert np.array_equal(times_a, times_b)
        assert np.all(np.diff(times_a) >= 0)
        assert len(times_a) == 200

    def test_bursts_cluster_arrivals(self):
        """An MMPP with a hot burst phase has a much more variable
        inter-arrival process than a Poisson at the same mean rate."""
        rng = np.random.default_rng(1)
        times = mmpp_arrival_times(rng, 2000, 0.02, 1.0, 600.0, 200.0)
        gaps = np.diff(times)
        cv2 = np.var(gaps) / np.mean(gaps) ** 2
        assert cv2 > 1.5  # Poisson has CV^2 == 1

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            mmpp_arrival_times(rng, 0, 0.1, 0.5, 10.0, 10.0)
        with pytest.raises(ValueError):
            mmpp_arrival_times(rng, 5, -0.1, 0.5, 10.0, 10.0)


class TestDiurnal:
    def test_monotone_and_deterministic(self):
        times_a = diurnal_arrival_times(np.random.default_rng(2), 300, 0.01, 0.2, 7200.0)
        times_b = diurnal_arrival_times(np.random.default_rng(2), 300, 0.01, 0.2, 7200.0)
        assert np.array_equal(times_a, times_b)
        assert np.all(np.diff(times_a) >= 0)

    def test_crest_denser_than_trough(self):
        rng = np.random.default_rng(3)
        period = 10_000.0
        times = diurnal_arrival_times(rng, 3000, 0.01, 0.5, period)
        phase = np.mod(times, period) / period
        crest = np.sum((phase > 0.25) & (phase < 0.75))   # around the rate peak
        trough = np.sum((phase < 0.25) | (phase > 0.75))
        assert crest > 2 * trough

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            diurnal_arrival_times(rng, 10, 0.2, 0.1, 100.0)  # peak < base


class TestHeavyTail:
    def test_sizes_within_bounds(self):
        sizes = heavy_tail_qubit_sizes(np.random.default_rng(4), 5000, 130, 500, alpha=2.2)
        assert sizes.min() >= 130
        assert sizes.max() <= 500
        assert sizes.dtype == np.int64

    def test_heavier_tail_with_smaller_alpha(self):
        big = heavy_tail_qubit_sizes(np.random.default_rng(5), 5000, 130, 10_000, alpha=1.2)
        small = heavy_tail_qubit_sizes(np.random.default_rng(5), 5000, 130, 10_000, alpha=3.0)
        assert big.mean() > small.mean()

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            heavy_tail_qubit_sizes(rng, 10, 0, 100)
        with pytest.raises(ValueError):
            heavy_tail_qubit_sizes(rng, 10, 10, 100, alpha=0.9)


class TestGenerateTrafficJobs:
    def test_deterministic_given_seed(self):
        spec = TrafficSpec(model="mmpp", qubit_dist="heavy_tail")
        jobs_a = generate_traffic_jobs(spec, 50, seed=9)
        jobs_b = generate_traffic_jobs(spec, 50, seed=9)
        assert [j.as_dict() for j in jobs_a] == [j.as_dict() for j in jobs_b]
        jobs_c = generate_traffic_jobs(spec, 50, seed=10)
        assert [j.arrival_time for j in jobs_a] != [j.arrival_time for j in jobs_c]

    def test_poisson_model(self):
        jobs = generate_traffic_jobs(TrafficSpec(model="poisson", rate=0.1), 40, seed=0)
        times = [j.arrival_time for j in jobs]
        assert times[0] == 0.0
        assert times == sorted(times)

    def test_heavy_tail_sizes_respect_cap(self):
        spec = TrafficSpec(model="poisson", qubit_dist="heavy_tail", max_qubits=400)
        jobs = generate_traffic_jobs(spec, 200, seed=1, qubit_range=(130, 250))
        assert max(j.num_qubits for j in jobs) <= 400
        assert min(j.num_qubits for j in jobs) >= 130

    def test_uniform_sizes_follow_config_range(self):
        jobs = generate_traffic_jobs(TrafficSpec(model="diurnal"), 50, seed=2,
                                     qubit_range=(140, 160))
        assert all(140 <= j.num_qubits <= 160 for j in jobs)


class TestFitWindow:
    """The guarded window-MLE helper: ``None`` instead of divide-by-zero."""

    def test_interval_mle(self):
        # 5 arrivals spanning 8s -> (n - 1) / span = 0.5 jobs/s.
        assert fit_window([0.0, 2.0, 4.0, 6.0, 8.0]) == pytest.approx(0.5)

    def test_interval_mle_sorts_input(self):
        assert fit_window([8.0, 0.0, 4.0]) == fit_window([0.0, 4.0, 8.0])

    def test_explicit_window_counts_inside_only(self):
        times = [0.0, 5.0, 10.0, 15.0, 100.0]
        # Four arrivals inside [0, 20] -> 0.2 jobs/s regardless of stragglers.
        assert fit_window(times, window_start=0.0, window_end=20.0) == pytest.approx(0.2)

    def test_none_on_empty(self):
        assert fit_window([]) is None

    def test_none_on_single_arrival(self):
        assert fit_window([3.0]) is None
        assert fit_window([3.0], window_start=0.0, window_end=10.0) is None

    def test_none_on_zero_span(self):
        assert fit_window([5.0, 5.0, 5.0]) is None

    def test_none_on_degenerate_window(self):
        assert fit_window([1.0, 2.0], window_start=5.0, window_end=5.0) is None
        assert fit_window([1.0, 2.0], window_start=9.0, window_end=5.0) is None

    def test_none_when_window_holds_too_few(self):
        assert fit_window([1.0, 50.0], window_start=0.0, window_end=10.0) is None
