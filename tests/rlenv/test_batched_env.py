"""Tests for BatchedQCloudEnv — the native vectorized allocation MDP.

The key property is *per-row equivalence*: given the same job (qubit demand,
depth, two-qubit gates, free levels) and the same action, every row of the
batched environment must reproduce the scalar
:class:`~repro.rlenv.qcloud_env.QCloudGymEnv` — observations and allocations
exactly, fidelities and rewards to within one ulp (NumPy's vectorized ``pow``
vs libm's scalar ``pow``).
"""

import numpy as np
import pytest

from repro.gymapi.spaces import Box
from repro.gymapi.vector import VecEnv
from repro.rlenv.batched_env import BatchedQCloudEnv
from repro.rlenv.qcloud_env import QCloudGymEnv


@pytest.fixture
def benv(default_fleet):
    return BatchedQCloudEnv(n_envs=8, devices=default_fleet, seed=0)


def inject_job(scalar_env, batched_env, row):
    """Copy the batched env's row-`row` job into a scalar env."""
    scalar_env._job_qubits = int(batched_env._job_qubits[row])
    scalar_env._job_depth = int(batched_env._job_depths[row])
    scalar_env._job_two_qubit_gates = int(batched_env._job_two_qubit_gates[row])
    scalar_env._free_levels = batched_env._free_levels[row].copy()


class TestConstruction:
    def test_is_vecenv_with_single_env_spaces(self, benv):
        assert isinstance(benv, VecEnv)
        assert benv.num_envs == 8
        assert isinstance(benv.observation_space, Box)
        assert benv.observation_space.shape == (16,)
        assert benv.action_space.shape == (5,)

    def test_invalid_n_envs_rejected(self, default_fleet):
        with pytest.raises(ValueError):
            BatchedQCloudEnv(n_envs=0, devices=default_fleet)

    def test_too_many_devices_rejected(self, default_fleet):
        with pytest.raises(ValueError):
            BatchedQCloudEnv(n_envs=2, devices=list(default_fleet) * 2)

    def test_qubit_range_must_fit_fleet(self, default_fleet):
        with pytest.raises(ValueError):
            BatchedQCloudEnv(n_envs=2, devices=default_fleet, qubit_range=(100, 10_000))

    def test_step_before_reset_raises(self, default_fleet):
        env = BatchedQCloudEnv(n_envs=2, devices=default_fleet)
        with pytest.raises(RuntimeError):
            env.step(np.ones((2, 5)))


class TestReset:
    def test_batched_observation_shape_and_infos(self, benv):
        obs, infos = benv.reset(seed=1)
        assert obs.shape == (8, 16)
        assert len(infos) == 8
        for i, info in enumerate(infos):
            assert 130 <= info["job_qubits"] <= 250
            assert 5 <= info["job_depth"] <= 20
            assert info["free_levels"].sum() >= info["job_qubits"]

    def test_seeded_reset_reproducible(self, default_fleet):
        e1 = BatchedQCloudEnv(n_envs=4, devices=default_fleet)
        e2 = BatchedQCloudEnv(n_envs=4, devices=default_fleet)
        o1, _ = e1.reset(seed=7)
        o2, _ = e2.reset(seed=7)
        assert np.array_equal(o1, o2)

    def test_rows_are_distinct_jobs(self, benv):
        benv.reset(seed=3)
        assert len(set(benv._job_qubits.tolist())) > 1

    def test_sequence_seed_rejected(self, benv):
        with pytest.raises(TypeError):
            benv.reset(seed=[1, 2, 3, 4, 5, 6, 7, 8])

    def test_fixed_utilization_mode(self, default_fleet):
        env = BatchedQCloudEnv(n_envs=3, devices=default_fleet, randomize_utilization=False)
        _, infos = env.reset(seed=0)
        for info in infos:
            assert np.all(info["free_levels"] == 127)

    def test_rejection_fallback_keeps_jobs_feasible(self, default_fleet):
        # qubit_range above the minimum first-draw free sum (250 for this
        # fleet) forces the batched retry/full-capacity fallback paths.
        env = BatchedQCloudEnv(n_envs=8, devices=default_fleet, qubit_range=(260, 300), seed=5)
        for _ in range(20):
            _, infos = env.reset()
            for info in infos:
                assert info["free_levels"].sum() >= info["job_qubits"]


class TestScalarEquivalence:
    def test_observations_match_scalar_env(self, benv, default_fleet):
        obs, _ = benv.reset(seed=11)
        scalar = QCloudGymEnv(devices=default_fleet, seed=0)
        for i in range(benv.num_envs):
            inject_job(scalar, benv, i)
            assert np.array_equal(scalar._observation(), obs[i])

    @pytest.mark.parametrize("kwargs", [
        {},
        {"communication_aware": True},
        {"include_two_qubit_errors": False},
    ])
    def test_step_matches_scalar_env_rewards(self, default_fleet, kwargs):
        benv = BatchedQCloudEnv(n_envs=6, devices=default_fleet, seed=17, **kwargs)
        benv.reset(seed=17)
        jobs = (
            benv._job_qubits.copy(),
            benv._job_depths.copy(),
            benv._job_two_qubit_gates.copy(),
            benv._free_levels.copy(),
        )
        actions = np.random.default_rng(4).uniform(0.0, 1.0, size=(6, 5))
        _, rewards, terminated, truncated, infos = benv.step(actions)
        assert np.all(terminated)
        assert not np.any(truncated)

        scalar = QCloudGymEnv(devices=default_fleet, seed=0, **kwargs)
        scalar.reset(seed=0)
        for i in range(6):
            scalar._job_qubits = int(jobs[0][i])
            scalar._job_depth = int(jobs[1][i])
            scalar._job_two_qubit_gates = int(jobs[2][i])
            scalar._free_levels = jobs[3][i].copy()
            _, r, _, _, info = scalar.step(actions[i])
            assert infos[i]["allocation"] == info["allocation"]
            assert infos[i]["num_devices"] == info["num_devices"]
            # Equal to within a couple of ulps (vectorized vs scalar pow).
            np.testing.assert_allclose(rewards[i], r, rtol=1e-14)
            np.testing.assert_allclose(
                infos[i]["device_fidelities"], info["device_fidelities"], rtol=1e-14
            )

    def test_concentrated_action_uses_fewer_devices(self, benv):
        benv.reset(seed=5)
        spread = np.ones((8, 5))
        _, _, _, _, spread_infos = benv.step(spread)
        # restore identical jobs for the concentrated action
        benv.reset(seed=5)
        conc = np.tile(np.array([10.0, 10.0, 0.0, 0.0, 0.0]), (8, 1))
        _, _, _, _, conc_infos = benv.step(conc)
        for s, c in zip(spread_infos, conc_infos):
            assert c["num_devices"] <= s["num_devices"]


class TestAutoReset:
    def test_step_returns_next_jobs_observation(self, benv):
        obs0, _ = benv.reset(seed=2)
        obs1, rewards, _, _, infos = benv.step(np.ones((8, 5)))
        assert not np.array_equal(obs0, obs1)
        for i, info in enumerate(infos):
            assert np.array_equal(info["final_observation"], obs0[i])
            assert set(info["final_info"]) == {
                "allocation", "num_devices", "device_fidelities", "job_qubits",
            }
        assert np.all(rewards > 0.0) and np.all(rewards <= 1.0)

    def test_many_steps_stay_feasible(self, benv):
        benv.reset(seed=8)
        rng = np.random.default_rng(0)
        for _ in range(50):
            _, rewards, _, _, infos = benv.step(rng.uniform(0, 1, size=(8, 5)))
            for info in infos:
                assert sum(info["allocation"]) == info["job_qubits"]
            assert np.all(rewards > 0.0)
