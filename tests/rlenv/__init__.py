"""Test package."""
