"""Training-driver tests (small-budget smoke runs of the paper's §6.6 setup)."""

import numpy as np
import pytest

from repro.rlenv.qcloud_env import QCloudGymEnv
from repro.rlenv.train import evaluate_policy, train_allocation_policy
from repro.scheduling.rl_policy import RLAllocationPolicy


@pytest.fixture(scope="module")
def trained_model(default_fleet):
    """A PPO agent trained for a small number of steps (shared across tests)."""
    model, curve = train_allocation_policy(
        total_timesteps=2048, n_steps=512, batch_size=64, seed=0, devices=default_fleet
    )
    return model, curve


class TestTraining:
    def test_curve_structure(self, trained_model):
        _, curve = trained_model
        assert len(curve) == 4
        for point in curve:
            assert set(point) >= {"timesteps", "ep_rew_mean", "entropy_loss"}

    def test_reward_in_fidelity_range(self, trained_model):
        _, curve = trained_model
        rewards = [p["ep_rew_mean"] for p in curve]
        assert all(0.0 < r < 1.0 for r in rewards)

    def test_initial_entropy_loss_matches_paper(self, trained_model):
        # Fig. 5: the entropy loss starts around -7 (5-dim unit Gaussian).
        _, curve = trained_model
        assert curve[0]["entropy_loss"] == pytest.approx(-7.09, abs=0.2)

    def test_evaluate_policy(self, trained_model, default_fleet):
        model, _ = trained_model
        env = QCloudGymEnv(devices=default_fleet, seed=123)
        stats = evaluate_policy(model, env, n_episodes=20, seed=3)
        assert 0.0 < stats["mean_reward"] < 1.0
        assert 1 <= stats["mean_devices_used"] <= 5
        assert stats["n_episodes"] == 20

    def test_evaluate_policy_validation(self, trained_model, default_fleet):
        model, _ = trained_model
        env = QCloudGymEnv(devices=default_fleet, seed=1)
        with pytest.raises(ValueError):
            evaluate_policy(model, env, n_episodes=0)


class TestDeployment:
    def test_trained_model_drives_rl_policy(self, trained_model, default_fleet):
        from repro.cloud.config import SimulationConfig
        from repro.cloud.environment import QCloudSimEnv

        model, _ = trained_model
        policy = RLAllocationPolicy(model)
        cfg = SimulationConfig(num_jobs=6, seed=5, policy="rlbase")
        env = QCloudSimEnv(cfg, policy=policy)
        records = env.run_until_complete()
        assert len(records) == 6
        assert all(r.num_devices >= 2 for r in records)

    def test_model_persistence_roundtrip(self, trained_model, tmp_path, default_fleet):
        model, _ = trained_model
        path = str(tmp_path / "allocation_policy.npz")
        model.save(path)

        fresh, _ = train_allocation_policy(
            total_timesteps=512, n_steps=512, seed=99, devices=default_fleet
        )
        obs = np.zeros(16)
        obs[0] = 0.8
        before, _ = fresh.predict(obs)
        fresh.load_parameters(path)
        after, _ = fresh.predict(obs)
        expected, _ = model.predict(obs)
        assert np.allclose(after, expected)
        assert not np.allclose(before, after)
