"""Unit tests for the QCloudGymEnv allocation MDP (§4.1)."""

import numpy as np
import pytest

from repro.gymapi.spaces import Box
from repro.hardware.backends import build_default_fleet
from repro.metrics.fidelity import communication_penalty
from repro.rlenv.qcloud_env import QCloudGymEnv


@pytest.fixture
def qenv(default_fleet):
    return QCloudGymEnv(devices=default_fleet, seed=0)


class TestSpaces:
    def test_observation_space_is_16_dimensional(self, qenv):
        assert isinstance(qenv.observation_space, Box)
        assert qenv.observation_space.shape == (16,)

    def test_action_space_is_5_dimensional(self, qenv):
        assert isinstance(qenv.action_space, Box)
        assert qenv.action_space.shape == (5,)

    def test_too_many_devices_rejected(self, default_fleet):
        with pytest.raises(ValueError):
            QCloudGymEnv(devices=list(default_fleet) * 2)

    def test_qubit_range_must_fit_fleet(self, default_fleet):
        with pytest.raises(ValueError):
            QCloudGymEnv(devices=default_fleet, qubit_range=(100, 10_000))


class TestReset:
    def test_reset_returns_valid_observation(self, qenv):
        obs, info = qenv.reset(seed=1)
        assert obs.shape == (16,)
        assert qenv.observation_space.contains(obs.astype(np.float64))
        assert 130 <= info["job_qubits"] <= 250
        assert 5 <= info["job_depth"] <= 20
        assert info["free_levels"].sum() >= info["job_qubits"]

    def test_seeded_reset_reproducible(self, default_fleet):
        e1 = QCloudGymEnv(devices=default_fleet)
        e2 = QCloudGymEnv(devices=default_fleet)
        o1, i1 = e1.reset(seed=7)
        o2, i2 = e2.reset(seed=7)
        assert np.allclose(o1, o2)
        assert i1["job_qubits"] == i2["job_qubits"]

    def test_fixed_utilization_mode(self, default_fleet):
        env = QCloudGymEnv(devices=default_fleet, randomize_utilization=False)
        _, info = env.reset(seed=0)
        assert np.all(info["free_levels"] == 127)

    def test_rejection_fallback_keeps_jobs_feasible(self, default_fleet):
        # qubit_range above the minimum first-draw free sum (250 for this
        # fleet) forces the bulk-drawn candidate / full-capacity fallback.
        env = QCloudGymEnv(devices=default_fleet, qubit_range=(260, 300), seed=5)
        for _ in range(50):
            _, info = env.reset()
            assert info["free_levels"].sum() >= info["job_qubits"]


class TestStep:
    def test_single_step_episode(self, qenv):
        qenv.reset(seed=2)
        obs, reward, terminated, truncated, info = qenv.step(np.ones(5))
        assert terminated is True
        assert truncated is False
        assert 0.0 < reward <= 1.0
        assert sum(info["allocation"]) == info["job_qubits"]

    def test_step_before_reset_raises(self, default_fleet):
        env = QCloudGymEnv(devices=default_fleet)
        with pytest.raises(RuntimeError):
            env.step(np.ones(5))

    def test_reward_is_mean_device_fidelity(self, qenv):
        qenv.reset(seed=3)
        _, reward, _, _, info = qenv.step(np.ones(5))
        assert reward == pytest.approx(np.mean(info["device_fidelities"]))

    def test_allocation_respects_free_levels(self, qenv):
        _, info = qenv.reset(seed=4)
        free = info["free_levels"]
        _, _, _, _, step_info = qenv.step(np.array([5.0, 0.1, 0.1, 0.1, 0.1]))
        assert all(a <= f for a, f in zip(step_info["allocation"], free))

    def test_concentrated_action_uses_fewer_devices(self, qenv):
        qenv.reset(seed=5)
        _, _, _, _, spread_info = qenv.step(np.ones(5))
        qenv.reset(seed=5)
        _, _, _, _, conc_info = qenv.step(np.array([10.0, 10.0, 0.0, 0.0, 0.0]))
        assert conc_info["num_devices"] <= spread_info["num_devices"]

    def test_communication_aware_reward_penalised(self, default_fleet):
        base = QCloudGymEnv(devices=default_fleet, randomize_utilization=False)
        shaped = QCloudGymEnv(
            devices=default_fleet, randomize_utilization=False, communication_aware=True
        )
        base.reset(seed=9)
        shaped.reset(seed=9)
        action = np.ones(5)
        _, r_base, _, _, info_base = base.step(action)
        _, r_shaped, _, _, info_shaped = shaped.step(action)
        assert info_base["allocation"] == info_shaped["allocation"]
        k = info_base["num_devices"]
        assert r_shaped == pytest.approx(r_base * communication_penalty(k))

    def test_two_qubit_errors_optionally_suppressed(self, default_fleet):
        with_2q = QCloudGymEnv(devices=default_fleet, randomize_utilization=False)
        without_2q = QCloudGymEnv(
            devices=default_fleet, randomize_utilization=False, include_two_qubit_errors=False
        )
        with_2q.reset(seed=11)
        without_2q.reset(seed=11)
        _, r_with, _, _, _ = with_2q.step(np.ones(5))
        _, r_without, _, _, _ = without_2q.step(np.ones(5))
        assert r_without > r_with

    def test_better_devices_yield_higher_fidelity(self, default_fleet):
        env = QCloudGymEnv(devices=default_fleet, randomize_utilization=False)
        env.reset(seed=13)
        scores = env._error_scores
        best_two = np.argsort(scores)[:2]
        worst_two = np.argsort(scores)[-2:]

        def one_hot_pair(indices):
            w = np.zeros(5)
            w[list(indices)] = 1.0
            return w

        _, r_best, _, _, _ = env.step(one_hot_pair(best_two))
        env.reset(seed=13)
        _, r_worst, _, _, _ = env.step(one_hot_pair(worst_two))
        assert r_best > r_worst
