"""Outages and maintenance: offline planning, kills, requeues, recovery."""

import numpy as np
import pytest

from repro.circuits.generators import random_circuit_spec
from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.cloud.qjob import QJob
from repro.dynamics import MaintenanceWindow, OutageSpec, Scenario


def _job(job_id, num_qubits, arrival_time=0.0):
    rng = np.random.default_rng(job_id)
    circuit = random_circuit_spec(rng, qubit_range=(num_qubits, num_qubits))
    return QJob(job_id=job_id, circuit=circuit, arrival_time=arrival_time)


def _two_device_env(scenario, jobs, policy="speed"):
    from repro.hardware.backends import get_device_profile

    profiles = [get_device_profile("ibm_strasbourg"), get_device_profile("ibm_kyiv")]
    return QCloudSimEnv(
        SimulationConfig(num_jobs=len(jobs), policy=policy),
        devices=profiles,
        jobs=jobs,
        scenario=scenario,
    )


class TestMaintenance:
    def test_graceful_window_diverts_new_jobs(self):
        # speed prefers ibm_strasbourg (220k CLOPS); a window covering the
        # second job's arrival must divert it to ibm_kyiv.
        scenario = Scenario(
            name="maint",
            maintenance=(MaintenanceWindow(start=1.0, duration=100_000.0,
                                           device="ibm_strasbourg"),),
        )
        jobs = [_job(0, 100, arrival_time=0.0), _job(1, 100, arrival_time=500.0)]
        env = _two_device_env(scenario, jobs)
        records = env.run_until_complete()
        assert records[0].devices == ["ibm_strasbourg"]  # started before the window
        assert records[1].devices == ["ibm_kyiv"]
        assert records[0].retries == 0  # graceful window drains running work

    def test_fleet_wide_window_blocks_everything(self):
        scenario = Scenario(
            name="fleet-maint",
            maintenance=(MaintenanceWindow(start=1.0, duration=300.0, device=None),),
        )
        jobs = [_job(0, 100, arrival_time=10.0)]
        env = _two_device_env(scenario, jobs)
        records = env.run_until_complete()
        # The job cannot start until the fleet comes back at t=301.
        assert records[0].start_time >= 301.0

    def test_killing_window_requeues_in_flight_job(self):
        scenario = Scenario(
            name="kill",
            maintenance=(MaintenanceWindow(start=1.0, duration=100_000.0,
                                           device="ibm_strasbourg", kill_running=True),),
        )
        jobs = [_job(0, 100, arrival_time=0.0)]
        env = _two_device_env(scenario, jobs)
        records = env.run_until_complete()
        record = records[0]
        assert record.retries == 1
        assert record.devices == ["ibm_kyiv"]
        requeues = [e for e in env.records.events if e.event == "requeue"]
        assert len(requeues) == 1
        strasbourg = env.cloud.device("ibm_strasbourg")
        assert strasbourg.aborted_subjobs == 1
        assert strasbourg.outage_count == 1
        # Reservations were rolled back when the job was requeued.
        assert strasbourg.free_qubits == strasbourg.num_qubits

    def test_split_job_requeued_when_one_device_dies(self):
        # 200 qubits forces a 2-device split; killing one device mid-run
        # requeues the whole job even though the sibling fragment survived.
        # The requeued job cannot fit on ibm_kyiv alone, so it waits for the
        # maintenance window to end and only then re-plans across both.
        scenario = Scenario(
            name="split-kill",
            maintenance=(MaintenanceWindow(start=1.0, duration=5000.0,
                                           device="ibm_strasbourg", kill_running=True),),
        )
        jobs = [_job(0, 200, arrival_time=0.0)]
        env = _two_device_env(scenario, jobs)
        records = env.run_until_complete()
        assert len(records) == 1
        assert records[0].retries == 1
        assert records[0].start_time >= 5001.0
        assert sorted(records[0].devices) == ["ibm_kyiv", "ibm_strasbourg"]

    def test_device_utilization_report_counts_outages(self):
        scenario = Scenario(
            name="report",
            maintenance=(MaintenanceWindow(start=1.0, duration=10.0, device="ibm_kyiv"),),
        )
        env = _two_device_env(scenario, [_job(0, 50)])
        env.run_until_complete()
        report = env.device_utilization_report()
        assert report["ibm_kyiv"]["outages"] == 1


class TestOutages:
    def test_outage_requeue_completes_on_recovery(self):
        # Single-device fleet: the outage kills the job, nothing else can run
        # it, and it must wait for the recovery signal to re-plan.
        from repro.hardware.backends import get_device_profile

        scenario = Scenario(
            name="solo-outage", outages=OutageSpec(mtbf=200.0, mttr=500.0), seed=4
        )
        env = QCloudSimEnv(
            SimulationConfig(num_jobs=1, policy="speed"),
            devices=[get_device_profile("ibm_kyiv")],
            jobs=[_job(0, 100)],
            scenario=scenario,
        )
        records = env.run_until_complete()
        offline = [e for e in env.scenario_engine.applied_events if e.kind == "offline"]
        if offline:  # outage actually hit the job's execution window
            assert records[0].retries >= 1
        assert len(records) == 1

    def test_flaky_fleet_preset_completes_all_jobs(self):
        env = QCloudSimEnv(SimulationConfig(num_jobs=25, policy="fair", scenario="flaky-fleet"))
        records = env.run_until_complete()
        assert len(records) + len(env.broker.failed_jobs) == 25
        assert len(records) == 25  # the fleet heals, so everything completes

    def test_offline_devices_excluded_from_planning(self):
        env = _two_device_env(None, [_job(0, 100, arrival_time=100.0)])
        env.cloud.device("ibm_strasbourg").set_offline()
        records = env.run_until_complete()
        assert records[0].devices == ["ibm_kyiv"]

    def test_set_offline_online_signal(self):
        env = _two_device_env(None, [_job(0, 50)])
        device = env.cloud.device("ibm_kyiv")
        assert device.set_offline() is True
        assert device.set_offline() is False  # idempotent
        assert device.set_online() is True
        assert device.set_online() is False
        assert device.outage_count == 1

    def test_overlapping_causes_do_not_cancel_each_other(self):
        """An outage that repairs inside a maintenance window must not bring
        the device back early: each offline cause clears independently."""
        env = _two_device_env(None, [_job(0, 50)])
        device = env.cloud.device("ibm_kyiv")
        assert device.set_offline(cause="maintenance") is True
        assert device.set_offline(cause="outage") is False  # already offline
        assert device.set_online("outage") is False          # maintenance persists
        assert not device.online
        assert device.set_online("maintenance") is True      # last cause cleared
        assert device.online
        assert device.outage_count == 1  # one offline transition

    def test_outage_during_maintenance_window_end_to_end(self):
        """The flaky-fleet shape: a stochastic outage overlapping a window
        keeps the device offline until the *window* ends."""
        scenario = Scenario(
            name="overlap",
            maintenance=(MaintenanceWindow(start=10.0, duration=2000.0,
                                           device="ibm_strasbourg"),),
            outages=OutageSpec(mtbf=100.0, mttr=20.0, devices=("ibm_strasbourg",)),
            seed=2,
        )
        jobs = [_job(0, 100, arrival_time=50.0)]
        env = _two_device_env(scenario, jobs)
        records = env.run_until_complete()
        # The job arrived inside the window, so it ran on the healthy device.
        assert records[0].devices == ["ibm_kyiv"]
        events = [e for e in env.scenario_engine.applied_events
                  if e.device == "ibm_strasbourg"]
        # Outages did overlap the window (otherwise this test is vacuous) ...
        assert any(e.source.startswith("outage") and e.time < 2010.0 for e in events)
        # ... yet replaying the cause transitions shows the device stayed
        # offline from window start to window end, outage repairs included.
        causes = set()
        for event in events:
            if event.kind == "offline":
                causes.add(event.payload["cause"])
            elif event.kind == "online":
                causes.discard(event.payload["cause"])
            if 10.0 <= event.time < 2010.0:
                assert "maintenance" in causes, f"window broken at t={event.time}"
