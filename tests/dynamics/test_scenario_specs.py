"""Scenario spec validation, the preset registry and resolution."""

import pytest

from repro.dynamics import (
    DriftSpec,
    MaintenanceWindow,
    OutageSpec,
    Scenario,
    TrafficSpec,
    WorldEvent,
    available_scenarios,
    get_scenario,
    register_scenario,
    resolve_scenario,
)

PRESETS = ("static", "drift", "flaky-fleet", "rush-hour", "black-friday")


class TestSpecs:
    def test_drift_spec_validation(self):
        with pytest.raises(ValueError):
            DriftSpec(interval=0)
        with pytest.raises(ValueError):
            DriftSpec(volatility=-0.1)
        with pytest.raises(ValueError):
            DriftSpec(recalibration_strength=0.0)
        with pytest.raises(ValueError):
            DriftSpec(recalibration_period=-1.0)

    def test_outage_spec_validation(self):
        with pytest.raises(ValueError):
            OutageSpec(mtbf=0)
        with pytest.raises(ValueError):
            OutageSpec(mttr=-1)

    def test_maintenance_window_validation(self):
        with pytest.raises(ValueError):
            MaintenanceWindow(start=-1, duration=10)
        with pytest.raises(ValueError):
            MaintenanceWindow(start=0, duration=0)

    def test_traffic_spec_validation(self):
        with pytest.raises(ValueError):
            TrafficSpec(model="fractal")
        with pytest.raises(ValueError):
            TrafficSpec(qubit_dist="bimodal")
        with pytest.raises(ValueError):
            TrafficSpec(rate=0)
        with pytest.raises(ValueError):
            TrafficSpec(tail_alpha=1.0)

    def test_scenario_needs_name(self):
        with pytest.raises(ValueError):
            Scenario(name="")

    def test_replay_scenario_excludes_specs(self):
        with pytest.raises(ValueError):
            Scenario(name="bad", drift=DriftSpec(), replay_events=())

    def test_scenario_flags(self):
        static = Scenario(name="s")
        assert static.is_static and not static.has_world_dynamics
        assert not static.is_perpetual

        drifting = Scenario(name="d", drift=DriftSpec())
        assert drifting.has_world_dynamics and drifting.is_perpetual

        maint = Scenario(name="m", maintenance=(MaintenanceWindow(start=1, duration=1),))
        assert maint.has_world_dynamics and not maint.is_perpetual

        traffic = Scenario(name="t", traffic=TrafficSpec())
        assert not traffic.has_world_dynamics and not traffic.is_static

    def test_scenarios_are_picklable(self):
        import pickle

        scenario = get_scenario("flaky-fleet")
        assert pickle.loads(pickle.dumps(scenario)) == scenario

    def test_world_event_roundtrip(self):
        event = WorldEvent(1.5, "drift", "calibration", "ibm_kyiv", {"factors": {"readout": 1.1}})
        assert WorldEvent.from_dict(event.as_dict()) == event


class TestRegistry:
    def test_presets_registered(self):
        names = available_scenarios()
        for preset in PRESETS:
            assert preset in names

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_scenario("does-not-exist")

    def test_register_and_resolve_custom(self):
        scenario = Scenario(name="test-custom", drift=DriftSpec(interval=10.0))
        register_scenario(scenario)
        try:
            assert resolve_scenario("test-custom") is scenario
        finally:
            from repro.dynamics import presets

            presets._REGISTRY.pop("test-custom", None)

    def test_resolve_trace_path_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resolve_scenario(str(tmp_path / "missing.jsonl"))

    def test_affected_devices(self):
        scenario = Scenario(
            name="x",
            drift=DriftSpec(devices=("a",)),
            outages=OutageSpec(devices=("b",)),
        )
        assert scenario.affected_devices(["a", "b", "c"]) == ["a", "b"]
        fleet_wide = Scenario(name="y", outages=OutageSpec())
        assert fleet_wide.affected_devices(["a", "b"]) == ["a", "b"]
