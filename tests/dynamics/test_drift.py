"""Calibration drift: live scores, recalibration, and catalogue purity."""

import math

import pytest

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.cloud.qdevice import IBMQuantumDevice
from repro.cloud.qjob import QJob
from repro.circuits.generators import random_circuit_spec
from repro.des.environment import Environment
from repro.dynamics import DriftSpec, Scenario
from repro.hardware.backends import get_device_profile
from repro.scheduling.error_aware import ErrorAwarePolicy

import numpy as np


def _job(job_id, num_qubits, arrival_time=0.0):
    rng = np.random.default_rng(job_id)
    circuit = random_circuit_spec(rng, qubit_range=(num_qubits, num_qubits))
    return QJob(job_id=job_id, circuit=circuit, arrival_time=arrival_time)


class TestLiveErrorScores:
    """The stale-score audit: scores must react to mid-run calibration swaps."""

    def test_device_aggregates_follow_calibration(self):
        env = Environment()
        device = IBMQuantumDevice(env, get_device_profile("ibm_kyiv"))
        before = device.error_score()
        device.calibration = device.calibration.scaled(readout=5.0, two_qubit=5.0)
        after = device.error_score()
        assert after > before
        assert device.avg_readout_error == device.calibration.average_readout_error()

    def test_calibration_setter_rejects_wrong_size(self):
        env = Environment()
        device = IBMQuantumDevice(env, get_device_profile("ibm_kyiv"))
        other = get_device_profile("ibm_kyiv", num_qubits=20).calibration
        with pytest.raises(ValueError):
            device.calibration = other

    def test_error_aware_plan_reacts_to_calibration_flip(self):
        """Flipping calibration changes the error-aware device choice."""
        env = Environment()
        kyiv = IBMQuantumDevice(env, get_device_profile("ibm_kyiv"))        # best
        brussels = IBMQuantumDevice(env, get_device_profile("ibm_brussels"))
        assert kyiv.error_score() < brussels.error_score()

        policy = ErrorAwarePolicy()
        job = _job(0, 100)
        plan = policy.plan(job, [kyiv, brussels])
        assert plan.device_names == ["ibm_kyiv"]

        # Degrade kyiv 10x: the next plan must move to brussels.
        kyiv.calibration = kyiv.calibration.scaled(readout=10.0, single_qubit=10.0, two_qubit=10.0)
        plan = policy.plan(job, [kyiv, brussels])
        assert plan.device_names == ["ibm_brussels"]

    def test_error_aware_choice_changes_mid_run(self):
        """End-to-end regression: a mid-run calibration flip redirects jobs."""
        profiles = [get_device_profile("ibm_kyiv"), get_device_profile("ibm_brussels")]
        jobs = [_job(0, 100, arrival_time=0.0), _job(1, 100, arrival_time=5000.0)]
        env = QCloudSimEnv(
            SimulationConfig(num_jobs=2, policy="fidelity"), devices=profiles, jobs=jobs
        )

        def flip():
            yield env.timeout(2500.0)
            kyiv = env.cloud.device("ibm_kyiv")
            kyiv.calibration = kyiv.calibration.scaled(
                readout=10.0, single_qubit=10.0, two_qubit=10.0
            )

        env.process(flip())
        records = env.run_until_complete()
        assert records[0].devices == ["ibm_kyiv"]
        assert records[1].devices == ["ibm_brussels"]


class TestDriftScenario:
    def test_drift_mutates_device_calibration_not_catalogue(self):
        profile = get_device_profile("ibm_kyiv")
        baseline_readout = profile.avg_readout_error
        scenario = Scenario(
            name="drift-test",
            drift=DriftSpec(interval=120.0, volatility=0.2, recalibration_period=None),
        )
        env = QCloudSimEnv(
            SimulationConfig(num_jobs=15, policy="fidelity"), scenario=scenario
        )
        env.run_until_complete()
        device = env.cloud.device("ibm_kyiv")
        assert env.scenario_engine.applied_events  # drift actually fired
        assert device.calibration is not profile.calibration
        assert device.avg_readout_error != pytest.approx(baseline_readout, rel=1e-12)
        # The shared catalogue profile is untouched.
        assert profile.avg_readout_error == baseline_readout
        assert get_device_profile("ibm_kyiv").avg_readout_error == baseline_readout

    def test_full_recalibration_restores_baseline(self):
        scenario = Scenario(
            name="recal-test",
            drift=DriftSpec(
                interval=100.0,
                volatility=0.3,
                recalibration_period=10_000.0,
                recalibration_strength=1.0,
            ),
        )
        env = QCloudSimEnv(SimulationConfig(num_jobs=5, policy="speed"), scenario=scenario)
        env.run_until_complete()
        engine = env.scenario_engine
        device = env.cloud.device("ibm_kyiv")
        baseline = engine._baselines["ibm_kyiv"]
        # Apply a manual full recalibration and compare against the baseline.
        engine._recalibrate("ibm_kyiv", strength=1.0)
        assert device.calibration.average_readout_error() == pytest.approx(
            baseline.scaled().average_readout_error(), rel=1e-12
        )

    def test_partial_recalibration_shrinks_deviation(self):
        scenario = Scenario(name="partial", drift=DriftSpec(interval=50.0, volatility=0.5,
                                                            recalibration_period=None))
        env = QCloudSimEnv(SimulationConfig(num_jobs=5, policy="speed"), scenario=scenario)
        env.run_until_complete()
        engine = env.scenario_engine
        state = engine._log_factors["ibm_kyiv"]
        before = {k: abs(v) for k, v in state.items()}
        assert any(v > 0 for v in before.values())
        engine._recalibrate("ibm_kyiv", strength=0.5)
        for category, magnitude in before.items():
            assert abs(state[category]) == pytest.approx(0.5 * magnitude, rel=1e-12)

    def test_scaled_clips_and_clamps(self):
        calibration = get_device_profile("ibm_kyiv").calibration
        blown_up = calibration.scaled(readout=1e6, single_qubit=1e6, two_qubit=1e6, t2=100.0)
        assert blown_up.average_readout_error() <= 0.5
        assert blown_up.average_single_qubit_error() <= 0.1
        for qubit in blown_up.qubits:
            assert qubit.t2_us <= 2.0 * qubit.t1_us
        assert math.isclose(
            calibration.scaled().average_readout_error(),
            calibration.average_readout_error(),
            rel_tol=1e-12,
        )
