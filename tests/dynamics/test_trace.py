"""Trace record → replay: exact reproduction of non-stationary runs."""

import json

import pytest

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.dynamics import (
    DriftSpec,
    OutageSpec,
    Scenario,
    TrafficSpec,
    load_trace,
    save_trace,
)

JOBS = 25


def _run(config, scenario=None):
    env = QCloudSimEnv(config, scenario=scenario)
    records = env.run_until_complete()
    return env, records


class TestRoundTrip:
    def test_bursty_outage_run_replays_exactly(self, tmp_path):
        """The acceptance-criteria case: a bursty + outage (+ drift) run is
        reproduced bit-for-bit from its trace."""
        scenario = Scenario(
            name="bursty-outage",
            traffic=TrafficSpec(model="mmpp", rate=0.02, burst_rate=0.3,
                                dwell_normal=600.0, dwell_burst=120.0,
                                qubit_dist="heavy_tail"),
            outages=OutageSpec(mtbf=1500.0, mttr=200.0),
            seed=13,
        )
        config = SimulationConfig(num_jobs=JOBS, policy="fidelity", seed=5)
        env, records = _run(config, scenario)
        assert env.scenario_engine.applied_events, "outages never fired; enlarge the run"

        path = tmp_path / "bursty.jsonl"
        env.save_trace(str(path))

        replay = load_trace(str(path))
        assert replay.is_replay
        env2, records2 = _run(SimulationConfig(num_jobs=JOBS, policy="fidelity", seed=5), replay)

        assert records2 == records
        assert env2.records.events == env.records.events
        assert list(env2.scenario_engine.applied_events) == list(env.scenario_engine.applied_events)

    def test_preset_roundtrip_all_policies(self, tmp_path):
        for policy in ("speed", "fair"):
            config = SimulationConfig(num_jobs=15, policy=policy, scenario="flaky-fleet")
            env, records = _run(config)
            path = tmp_path / f"{policy}.jsonl"
            env.save_trace(str(path))
            env2, records2 = _run(
                SimulationConfig(num_jobs=15, policy=policy), load_trace(str(path))
            )
            assert records2 == records

    def test_traffic_workload_survives_roundtrip(self, tmp_path):
        config = SimulationConfig(num_jobs=10, policy="speed", scenario="rush-hour")
        env, records = _run(config)
        path = tmp_path / "rush.jsonl"
        env.save_trace(str(path))
        replay = load_trace(str(path))
        assert len(replay.replay_jobs) == 10
        original = env.job_generator.jobs
        for recorded, job in zip(replay.replay_jobs, original):
            assert recorded.arrival_time == job.arrival_time
            assert recorded.num_qubits == job.num_qubits
            assert recorded.num_shots == job.num_shots
        env2, records2 = _run(SimulationConfig(num_jobs=10, policy="speed"), replay)
        assert records2 == records

    def test_plain_run_trace(self, tmp_path):
        """Even a scenario-less run records a replayable workload trace."""
        env, records = _run(SimulationConfig(num_jobs=8, policy="speed"))
        path = tmp_path / "plain.jsonl"
        save_trace(env, str(path))
        replay = load_trace(str(path))
        assert replay.replay_events == ()
        env2, records2 = _run(SimulationConfig(num_jobs=8, policy="speed"), replay)
        assert records2 == records


class TestFormat:
    def test_trace_is_jsonl_with_header(self, tmp_path):
        config = SimulationConfig(num_jobs=5, policy="speed", scenario="drift")
        env, _ = _run(config)
        path = tmp_path / "t.jsonl"
        env.save_trace(str(path))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "header"
        assert lines[0]["scenario"] == "drift"
        assert lines[0]["config"]["num_jobs"] == 5
        kinds = {line["type"] for line in lines[1:]}
        assert kinds <= {"job", "event"}
        assert sum(1 for line in lines if line["type"] == "job") == 5

    def test_load_rejects_missing_header(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"type": "job", "job_id": 0, "num_qubits": 5, "depth": 3, "num_shots": 10}\n')
        with pytest.raises(ValueError, match="no header"):
            load_trace(str(path))

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "vfuture.jsonl"
        path.write_text('{"type": "header", "version": 99, "scenario": "x", "sources": [], "config": {}}\n')
        with pytest.raises(ValueError, match="version"):
            load_trace(str(path))

    def test_load_rejects_unknown_line_type(self, tmp_path):
        path = tmp_path / "weird.jsonl"
        path.write_text(
            '{"type": "header", "version": 1, "scenario": "x", "sources": [], "config": {}}\n'
            '{"type": "banana"}\n'
        )
        with pytest.raises(ValueError, match="banana"):
            load_trace(str(path))
