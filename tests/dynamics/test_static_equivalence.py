"""The ``static`` scenario must be byte-identical to a scenario-less run.

This is the subsystem's no-regression guarantee: installing the scenario
machinery with the ``static`` preset schedules no events, consumes no event
ids and perturbs no RNG stream, so every completed job record — times,
fidelities, device assignments, breakdowns — is *exactly* equal across all
four paper strategies.
"""

import numpy as np
import pytest

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv

JOBS = 25
SEED = 2025


def _rl_policy():
    from repro.gymapi.spaces import Box
    from repro.rl.policies import ActorCriticPolicy
    from repro.scheduling.rl_policy import RLAllocationPolicy

    net = ActorCriticPolicy(
        Box(0.0, np.inf, shape=(16,), dtype=np.float64),
        Box(0.0, 1.0, shape=(5,), dtype=np.float64),
        seed=0,
    )
    return RLAllocationPolicy(net)


def _run(policy_name, scenario):
    policy = _rl_policy() if policy_name == "rlbase" else None
    config = SimulationConfig(
        num_jobs=JOBS,
        seed=SEED,
        policy=policy_name if policy_name != "rlbase" else "speed",
        scenario=scenario,
    )
    env = QCloudSimEnv(config, policy=policy)
    records = env.run_until_complete()
    return env, records


@pytest.mark.parametrize("policy_name", ["speed", "fidelity", "fair", "rlbase"])
def test_static_scenario_byte_identical(policy_name):
    env_plain, plain = _run(policy_name, scenario=None)
    env_static, static = _run(policy_name, scenario="static")

    assert env_plain.scenario_engine is None
    assert env_static.scenario_engine is not None
    assert env_static.scenario_engine.applied_events == []

    assert len(plain) == JOBS
    # Dataclass equality covers every field, including float times,
    # fidelities and the per-device breakdowns — byte-identical results.
    assert static == plain
    # The event logs (arrival/start/finish/fidelity with exact times) match too.
    assert env_static.records.events == env_plain.records.events


def test_static_scenario_events_identical_clock():
    env_plain, _ = _run("speed", scenario=None)
    env_static, _ = _run("speed", scenario="static")
    assert env_static.now == env_plain.now
