"""Scenario determinism: same seed ⇒ identical records and event streams."""

import pytest

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.dynamics import DriftSpec, OutageSpec, Scenario

JOBS = 20


def _run(scenario, seed=11, policy="speed"):
    env = QCloudSimEnv(
        SimulationConfig(num_jobs=JOBS, seed=seed, policy=policy), scenario=scenario
    )
    records = env.run_until_complete()
    return env, records


@pytest.mark.parametrize("preset", ["drift", "flaky-fleet", "rush-hour", "black-friday"])
def test_preset_runs_are_reproducible(preset):
    env_a, records_a = _run(preset)
    env_b, records_b = _run(preset)
    assert records_a == records_b
    assert env_a.scenario_engine.applied_events == env_b.scenario_engine.applied_events
    assert env_a.records.events == env_b.records.events


def test_config_seed_changes_the_event_stream():
    scenario = Scenario(
        name="stochastic", outages=OutageSpec(mtbf=800.0, mttr=100.0), seed=0
    )
    env_a, _ = _run(scenario, seed=1)
    env_b, _ = _run(scenario, seed=2)
    times_a = [e.time for e in env_a.scenario_engine.applied_events]
    times_b = [e.time for e in env_b.scenario_engine.applied_events]
    assert times_a != times_b


def test_scenario_seed_changes_the_event_stream():
    base = dict(drift=DriftSpec(interval=200.0, volatility=0.1, recalibration_period=None))
    env_a, _ = _run(Scenario(name="s", seed=0, **base))
    env_b, _ = _run(Scenario(name="s", seed=1, **base))
    factors_a = [e.payload["factors"] for e in env_a.scenario_engine.applied_events]
    factors_b = [e.payload["factors"] for e in env_b.scenario_engine.applied_events]
    assert factors_a != factors_b


def test_sources_draw_independent_streams():
    """Adding an outage source must not perturb the drift factor stream."""
    drift_only = Scenario(name="d", drift=DriftSpec(interval=300.0, recalibration_period=None))
    both = Scenario(
        name="d",  # same name → same seed root → same per-source streams
        drift=DriftSpec(interval=300.0, recalibration_period=None),
        outages=OutageSpec(mtbf=1e9, mttr=1.0),  # effectively never fires
    )
    env_a, _ = _run(drift_only)
    env_b, _ = _run(both)
    drift_a = [e for e in env_a.scenario_engine.applied_events if e.source == "drift"]
    drift_b = [e for e in env_b.scenario_engine.applied_events if e.source == "drift"]
    assert drift_a == drift_b
