"""Unit tests for the device catalogue."""

import networkx as nx
import pytest

from repro.hardware.backends import (
    DEFAULT_DEVICE_NAMES,
    DeviceProfile,
    build_default_fleet,
    get_device_profile,
    list_available_devices,
)
from repro.hardware.calibration import synthetic_calibration
from repro.hardware.coupling import ibm_eagle_coupling


class TestCatalogue:
    def test_all_paper_devices_available(self):
        available = list_available_devices()
        for name in (
            "ibm_strasbourg",
            "ibm_brussels",
            "ibm_kyiv",
            "ibm_quebec",
            "ibm_kawasaki",
        ):
            assert name in available

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            get_device_profile("ibm_atlantis")

    def test_paper_clops_values(self):
        clops = {name: get_device_profile(name, num_qubits=20).clops for name in DEFAULT_DEVICE_NAMES}
        assert clops["ibm_strasbourg"] == 220_000
        assert clops["ibm_brussels"] == 220_000
        assert clops["ibm_quebec"] == 32_000
        assert clops["ibm_kyiv"] == 30_000
        assert clops["ibm_kawasaki"] == 29_000

    def test_default_fleet_matches_case_study(self, default_fleet):
        assert len(default_fleet) == 5
        for profile in default_fleet:
            assert profile.num_qubits == 127
            assert profile.quantum_volume == 127
            assert profile.coupling.number_of_nodes() == 127
            assert nx.is_connected(profile.coupling)

    def test_profiles_are_cached(self):
        p1 = get_device_profile("ibm_kyiv", num_qubits=30)
        p2 = get_device_profile("ibm_kyiv", num_qubits=30)
        assert p1 is p2

    def test_calibration_deterministic_across_calls(self):
        p1 = get_device_profile("ibm_quebec", num_qubits=25)
        p2 = get_device_profile("ibm_quebec", num_qubits=25, seed=None)
        assert p1.avg_readout_error == p2.avg_readout_error

    def test_error_scores_differ_across_devices(self, default_fleet):
        scores = {p.name: p.error_score() for p in default_fleet}
        assert len(set(round(s, 6) for s in scores.values())) == len(scores)
        # The slower devices were configured with better calibration than the
        # worst fast device (the regime discussed in §7.2).
        assert scores["ibm_kyiv"] < scores["ibm_brussels"]

    def test_error_score_positive_and_small(self, default_fleet):
        for profile in default_fleet:
            assert 0 < profile.error_score() < 0.1


class TestDeviceProfileValidation:
    def test_coupling_size_mismatch(self):
        coupling = ibm_eagle_coupling(10)
        calibration = synthetic_calibration(coupling, seed=0)
        with pytest.raises(ValueError):
            DeviceProfile(
                name="bad",
                num_qubits=12,
                clops=1000,
                quantum_volume=32,
                coupling=coupling,
                calibration=calibration,
            )

    def test_invalid_clops(self):
        coupling = ibm_eagle_coupling(10)
        calibration = synthetic_calibration(coupling, seed=0)
        with pytest.raises(ValueError):
            DeviceProfile(
                name="bad",
                num_qubits=10,
                clops=0,
                quantum_volume=32,
                coupling=coupling,
                calibration=calibration,
            )

    def test_calibration_mismatch(self):
        coupling = ibm_eagle_coupling(10)
        calibration = synthetic_calibration(ibm_eagle_coupling(8), seed=0)
        with pytest.raises(ValueError):
            DeviceProfile(
                name="bad",
                num_qubits=10,
                clops=1000,
                quantum_volume=32,
                coupling=coupling,
                calibration=calibration,
            )
