"""Unit tests for coupling-map generators."""

import networkx as nx
import pytest

from repro.hardware.coupling import (
    coupling_graph,
    grid_graph,
    heavy_hex_graph,
    ibm_eagle_coupling,
    largest_connected_subgraph,
    line_graph,
    ring_graph,
)


class TestHeavyHex:
    def test_connected_and_integer_labelled(self):
        g = heavy_hex_graph(2, 2)
        assert nx.is_connected(g)
        assert set(g.nodes()) == set(range(g.number_of_nodes()))

    def test_max_degree_three(self):
        g = heavy_hex_graph(3, 3)
        assert max(dict(g.degree()).values()) <= 3

    def test_subdivision_doubles_structure(self):
        hexagonal = nx.hexagonal_lattice_graph(2, 2)
        heavy = heavy_hex_graph(2, 2)
        assert heavy.number_of_nodes() == hexagonal.number_of_nodes() + hexagonal.number_of_edges()
        assert heavy.number_of_edges() == 2 * hexagonal.number_of_edges()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            heavy_hex_graph(0, 3)


class TestEagle:
    def test_exactly_127_qubits(self):
        g = ibm_eagle_coupling()
        assert g.number_of_nodes() == 127
        assert nx.is_connected(g)
        assert max(dict(g.degree()).values()) <= 3

    def test_custom_size(self):
        g = ibm_eagle_coupling(30)
        assert g.number_of_nodes() == 30
        assert nx.is_connected(g)

    def test_deterministic(self):
        g1, g2 = ibm_eagle_coupling(50), ibm_eagle_coupling(50)
        assert sorted(g1.edges()) == sorted(g2.edges())

    def test_invalid(self):
        with pytest.raises(ValueError):
            ibm_eagle_coupling(0)


class TestSimpleTopologies:
    def test_line(self):
        g = line_graph(10)
        assert g.number_of_edges() == 9
        assert nx.is_connected(g)

    def test_ring(self):
        g = ring_graph(8)
        assert g.number_of_edges() == 8
        assert all(d == 2 for _, d in g.degree())
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.number_of_nodes() == 12
        assert nx.is_connected(g)

    def test_coupling_graph_dispatch(self):
        for name in ("heavy_hex", "eagle", "line", "ring", "grid"):
            g = coupling_graph(name, 20)
            assert g.number_of_nodes() == 20
            assert nx.is_connected(g)

    def test_coupling_graph_unknown(self):
        with pytest.raises(ValueError):
            coupling_graph("torus", 10)


class TestConnectedSubgraph:
    def test_found_region_is_connected(self):
        g = ibm_eagle_coupling(60)
        region = largest_connected_subgraph(g, 25)
        assert region is not None
        assert len(region) == 25
        assert nx.is_connected(g.subgraph(region))

    def test_too_large_returns_none(self):
        g = line_graph(5)
        assert largest_connected_subgraph(g, 6) is None

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            largest_connected_subgraph(line_graph(5), 0)

    def test_full_size_region(self):
        g = ring_graph(12)
        region = largest_connected_subgraph(g, 12)
        assert region == frozenset(range(12))
