"""Test package."""
