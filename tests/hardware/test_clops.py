"""Unit tests for the CLOPS execution-time model (Eq. 3)."""

import math

import pytest

from repro.hardware.clops import clops_execution_time, log2_quantum_volume


class TestLog2QV:
    def test_values(self):
        assert log2_quantum_volume(128) == 7
        assert math.isclose(log2_quantum_volume(127), math.log2(127))
        assert log2_quantum_volume(32) == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            log2_quantum_volume(1)
        with pytest.raises(ValueError):
            log2_quantum_volume(0)


class TestExecutionTime:
    def test_paper_worked_example(self):
        # §6.1: M=100, K=10, S=40,000, D=7 layers, CLOPS=220,000 → ≈ 21 minutes.
        tau = clops_execution_time(
            shots=40_000, clops=220_000, quantum_volume=128, num_templates=100, num_updates=10
        )
        assert tau == pytest.approx(100 * 10 * 40_000 * 7 / 220_000)
        assert tau / 60 == pytest.approx(21.2, abs=0.2)

    def test_scales_linearly_with_shots(self):
        t1 = clops_execution_time(10_000, clops=30_000)
        t2 = clops_execution_time(20_000, clops=30_000)
        assert t2 == pytest.approx(2 * t1)

    def test_inverse_in_clops(self):
        slow = clops_execution_time(10_000, clops=30_000)
        fast = clops_execution_time(10_000, clops=220_000)
        assert slow / fast == pytest.approx(220_000 / 30_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            clops_execution_time(0, clops=1000)
        with pytest.raises(ValueError):
            clops_execution_time(100, clops=0)
        with pytest.raises(ValueError):
            clops_execution_time(100, clops=1000, num_templates=0)
