"""Unit tests for calibration data structures and the synthetic generator."""

import numpy as np
import pytest

from repro.hardware.calibration import (
    CalibrationData,
    GateCalibration,
    QubitCalibration,
    synthetic_calibration,
)
from repro.hardware.coupling import ibm_eagle_coupling, line_graph


class TestQubitCalibration:
    def test_validation(self):
        with pytest.raises(ValueError):
            QubitCalibration(0, t1_us=-1, t2_us=100, readout_error=0.01, single_qubit_error=1e-4)
        with pytest.raises(ValueError):
            QubitCalibration(0, t1_us=100, t2_us=100, readout_error=1.5, single_qubit_error=1e-4)

    def test_frozen(self):
        q = QubitCalibration(0, 100, 80, 0.01, 1e-4)
        with pytest.raises(Exception):
            q.readout_error = 0.5


class TestGateCalibration:
    def test_validation(self):
        with pytest.raises(ValueError):
            GateCalibration((0, 1), error=2.0)
        with pytest.raises(ValueError):
            GateCalibration((0, 1), error=0.01, duration_ns=-5)


class TestCalibrationData:
    def _make(self, n=4):
        qubits = [QubitCalibration(i, 200, 150, 0.01 * (i + 1), 1e-4 * (i + 1)) for i in range(n)]
        gates = [GateCalibration((i, i + 1), 0.005 * (i + 1)) for i in range(n - 1)]
        return CalibrationData(qubits=qubits, gates=gates)

    def test_requires_qubits(self):
        with pytest.raises(ValueError):
            CalibrationData(qubits=[], gates=[])

    def test_duplicate_indices_rejected(self):
        q = QubitCalibration(0, 200, 150, 0.01, 1e-4)
        with pytest.raises(ValueError):
            CalibrationData(qubits=[q, q], gates=[])

    def test_averages(self):
        cal = self._make(4)
        assert np.isclose(cal.average_readout_error(), 0.01 * (1 + 2 + 3 + 4) / 4)
        assert np.isclose(cal.average_single_qubit_error(), 1e-4 * 2.5)
        assert np.isclose(cal.average_two_qubit_error(), 0.005 * 2)
        assert cal.num_qubits == 4
        assert cal.average_t1_us() == 200
        assert cal.average_t2_us() == 150

    def test_no_gates_average_is_zero(self):
        cal = CalibrationData(qubits=[QubitCalibration(0, 100, 80, 0.01, 1e-4)], gates=[])
        assert cal.average_two_qubit_error() == 0.0

    def test_dict_roundtrip(self):
        cal = self._make(3)
        rebuilt = CalibrationData.from_dict(cal.as_dict())
        assert rebuilt.num_qubits == 3
        assert np.isclose(rebuilt.average_readout_error(), cal.average_readout_error())
        assert rebuilt.gates[0].qubits == cal.gates[0].qubits


class TestSyntheticCalibration:
    def test_covers_every_qubit_and_edge(self):
        coupling = ibm_eagle_coupling(40)
        cal = synthetic_calibration(coupling, seed=0)
        assert cal.num_qubits == 40
        assert len(cal.gates) == coupling.number_of_edges()

    def test_reproducible_with_seed(self):
        coupling = line_graph(10)
        c1 = synthetic_calibration(coupling, seed=5)
        c2 = synthetic_calibration(coupling, seed=5)
        assert np.allclose(c1.readout_errors, c2.readout_errors)
        assert np.allclose(c1.two_qubit_errors, c2.two_qubit_errors)

    def test_different_seeds_differ(self):
        coupling = line_graph(10)
        c1 = synthetic_calibration(coupling, seed=1)
        c2 = synthetic_calibration(coupling, seed=2)
        assert not np.allclose(c1.readout_errors, c2.readout_errors)

    def test_means_close_to_requested(self):
        coupling = ibm_eagle_coupling(127)
        cal = synthetic_calibration(
            coupling, readout_error_mean=0.02, two_qubit_error_mean=0.008, seed=3
        )
        assert np.isclose(cal.average_readout_error(), 0.02, rtol=0.15)
        assert np.isclose(cal.average_two_qubit_error(), 0.008, rtol=0.15)

    def test_physical_constraints(self):
        cal = synthetic_calibration(line_graph(50), seed=7)
        for q in cal.qubits:
            assert q.t1_us > 0 and q.t2_us > 0
            assert q.t2_us <= 2 * q.t1_us + 1e-9
            assert 0 <= q.readout_error <= 0.5
        assert np.all(cal.two_qubit_errors <= 0.5)

    def test_negative_spread_rejected(self):
        with pytest.raises(ValueError):
            synthetic_calibration(line_graph(5), spread=-0.1)
