"""Unit and property tests for the qubit-region tracker."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.coupling import ibm_eagle_coupling, line_graph, ring_graph
from repro.hardware.regions import QubitRegionTracker


class TestAllocate:
    def test_connected_region_on_idle_device(self):
        tracker = QubitRegionTracker(ibm_eagle_coupling(50))
        allocation = tracker.allocate(20)
        assert allocation.size == 20
        assert allocation.connected
        assert nx.is_connected(tracker.coupling.subgraph(allocation.qubits))
        assert tracker.num_free == 30

    def test_allocation_exhausts_capacity(self):
        tracker = QubitRegionTracker(line_graph(10))
        tracker.allocate(10)
        assert tracker.num_free == 0
        with pytest.raises(ValueError):
            tracker.allocate(1)

    def test_invalid_size(self):
        tracker = QubitRegionTracker(line_graph(5))
        with pytest.raises(ValueError):
            tracker.allocate(0)
        with pytest.raises(ValueError):
            tracker.allocate(6)

    def test_fragmentation_forces_disconnected_region(self):
        # Occupy the middle of a line so the free qubits split into two
        # components of 4 and 4; a request for 6 cannot be connected.
        tracker = QubitRegionTracker(line_graph(12))
        middle = tracker.allocate(4)  # takes a connected block
        # Free the ends only if the block is in the middle; build explicitly:
        tracker.reset()
        # Manually occupy qubits 4..7 by allocating after shrinking free set:
        tracker._free -= {4, 5, 6, 7}
        allocation = tracker.allocate(6)
        assert not allocation.connected
        assert allocation.size == 6

    def test_connected_fraction_statistics(self):
        tracker = QubitRegionTracker(line_graph(12))
        tracker._free -= {4, 5, 6, 7}
        first = tracker.allocate(3)    # fits inside the {0,1,2,3} component
        second = tracker.allocate(5)   # only 1 + 4 qubits left in two components
        assert first.connected
        assert not second.connected
        assert tracker.allocations_total == 2
        assert tracker.allocations_connected == 1
        assert tracker.connected_fraction == pytest.approx(0.5)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            QubitRegionTracker(nx.Graph())


class TestRelease:
    def test_release_returns_qubits(self):
        tracker = QubitRegionTracker(ring_graph(16))
        a = tracker.allocate(10)
        tracker.release(a.handle)
        assert tracker.num_free == 16
        assert tracker.utilization == 0.0

    def test_release_unknown_handle(self):
        tracker = QubitRegionTracker(ring_graph(8))
        with pytest.raises(KeyError):
            tracker.release(42)

    def test_double_release_rejected(self):
        tracker = QubitRegionTracker(ring_graph(8))
        a = tracker.allocate(3)
        tracker.release(a.handle)
        with pytest.raises(KeyError):
            tracker.release(a.handle)

    def test_reset(self):
        tracker = QubitRegionTracker(ring_graph(8))
        tracker.allocate(5)
        tracker.reset()
        assert tracker.num_free == 8
        assert tracker.allocations_total == 0


@settings(max_examples=50, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=10))
def test_allocate_release_conserves_qubits(sizes):
    """Allocating and releasing arbitrary sequences never loses or duplicates qubits."""
    tracker = QubitRegionTracker(ibm_eagle_coupling(60))
    granted = []
    for size in sizes:
        if size > tracker.num_free:
            with pytest.raises(ValueError):
                tracker.allocate(size)
            continue
        allocation = tracker.allocate(size)
        # No overlap with still-held regions.
        for other in granted:
            assert not (allocation.qubits & other.qubits)
        granted.append(allocation)
    held = sum(a.size for a in granted)
    assert tracker.num_free == 60 - held
    for allocation in granted:
        tracker.release(allocation.handle)
    assert tracker.num_free == 60
