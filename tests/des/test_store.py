"""Unit tests for Store / FilterStore / PriorityStore."""

import pytest

from repro.des import Environment, FilterStore, PriorityItem, PriorityStore, Store


class TestStore:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_put_then_get_fifo(self, env):
        store = Store(env)
        log = []

        def producer(env, store):
            for item in ["x", "y", "z"]:
                yield store.put(item)

        def consumer(env, store):
            for _ in range(3):
                item = yield store.get()
                log.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert log == ["x", "y", "z"]

    def test_get_blocks_until_item_available(self, env):
        store = Store(env)
        log = []

        def consumer(env, store):
            item = yield store.get()
            log.append((item, env.now))

        def producer(env, store):
            yield env.timeout(4)
            yield store.put("late")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert log == [("late", 4)]

    def test_bounded_store_blocks_put(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env, store):
            yield store.put("a")
            yield store.put("b")
            log.append(("second put done", env.now))

        def consumer(env, store):
            yield env.timeout(3)
            yield store.get()

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert log == [("second put done", 3)]

    def test_items_view(self, env):
        store = Store(env)

        def producer(env, store):
            yield store.put(1)
            yield store.put(2)

        env.process(producer(env, store))
        env.run()
        assert store.items == [1, 2]


class TestFilterStore:
    def test_filter_retrieves_matching_item(self, env):
        store = FilterStore(env)
        log = []

        def producer(env, store):
            for item in [1, 2, 3, 4]:
                yield store.put(item)

        def consumer(env, store):
            item = yield store.get(lambda x: x % 2 == 0)
            log.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert log == [2]
        assert 1 in store.items and 3 in store.items

    def test_blocked_filter_does_not_block_other_gets(self, env):
        store = FilterStore(env)
        log = []

        def want(env, store, predicate, name):
            item = yield store.get(predicate)
            log.append((name, item, env.now))

        def producer(env, store):
            yield env.timeout(1)
            yield store.put("apple")
            yield env.timeout(1)
            yield store.put("banana")

        env.process(want(env, store, lambda x: x == "banana", "b-waiter"))
        env.process(want(env, store, lambda x: x == "apple", "a-waiter"))
        env.process(producer(env, store))
        env.run()
        assert ("a-waiter", "apple", 1) in log
        assert ("b-waiter", "banana", 2) in log


class TestPriorityStore:
    def test_items_served_in_priority_order(self, env):
        store = PriorityStore(env)
        log = []

        def producer(env, store):
            yield store.put(PriorityItem(3, "low"))
            yield store.put(PriorityItem(1, "high"))
            yield store.put(PriorityItem(2, "mid"))

        def consumer(env, store):
            # Wait until all items are in the store so retrieval order reflects
            # priority rather than insertion interleaving.
            yield env.timeout(1)
            for _ in range(3):
                item = yield store.get()
                log.append(item.item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert log == ["high", "mid", "low"]

    def test_priority_item_ordering(self):
        assert PriorityItem(1, "a") < PriorityItem(2, "b")
        assert PriorityItem(1, "a") == PriorityItem(1, "a")
        assert not PriorityItem(1, "a") == PriorityItem(1, "b")
