"""Unit tests for DES processes (generator semantics, interrupts, return values)."""

import pytest

from repro.des import Environment, Interrupt


class TestProcessBasics:
    def test_process_requires_generator(self, env):
        with pytest.raises(ValueError):
            env.process(lambda: None)

    def test_process_return_value(self, env):
        def producer(env):
            yield env.timeout(3)
            return "result"

        proc = env.process(producer(env))
        assert env.run(until=proc) == "result"

    def test_process_is_alive_until_done(self, env):
        def worker(env):
            yield env.timeout(5)

        proc = env.process(worker(env))
        assert proc.is_alive
        env.run()
        assert not proc.is_alive
        assert proc.processed

    def test_yielding_a_process_waits_for_it(self, env):
        def child(env):
            yield env.timeout(4)
            return 99

        def parent(env, log):
            value = yield env.process(child(env))
            log.append((env.now, value))

        log = []
        env.process(parent(env, log))
        env.run()
        assert log == [(4, 99)]

    def test_active_process_tracking(self, env):
        observed = []

        def worker(env):
            observed.append(env.active_process)
            yield env.timeout(1)

        proc = env.process(worker(env))
        env.run()
        assert observed == [proc]
        assert env.active_process is None

    def test_yield_invalid_value_raises(self, env):
        def broken(env):
            yield 42

        env.process(broken(env))
        with pytest.raises(RuntimeError):
            env.run()

    def test_exception_inside_process_propagates_to_waiter(self, env):
        def failing(env):
            yield env.timeout(1)
            raise ValueError("inner")

        def waiter(env, log):
            try:
                yield env.process(failing(env))
            except ValueError as exc:
                log.append(str(exc))

        log = []
        env.process(waiter(env, log))
        env.run()
        assert log == ["inner"]

    def test_yield_already_processed_event_resumes_immediately(self, env):
        def proc(env, log):
            t = env.timeout(0, value="early")
            yield env.timeout(5)
            # t was processed long ago; yielding it must not block.
            value = yield t
            log.append((env.now, value))

        log = []
        env.process(proc(env, log))
        env.run()
        assert log == [(5, "early")]

    def test_process_name(self, env):
        def my_process(env):
            yield env.timeout(1)

        proc = env.process(my_process(env))
        assert proc.name == "my_process"
        assert "my_process" in repr(proc)


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        log = []

        def victim(env):
            try:
                yield env.timeout(10)
            except Interrupt as interrupt:
                log.append((env.now, interrupt.cause))

        def attacker(env, victim_proc):
            yield env.timeout(3)
            victim_proc.interrupt("preempted")

        proc = env.process(victim(env))
        env.process(attacker(env, proc))
        env.run()
        assert log == [(3, "preempted")]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def victim(env):
            try:
                yield env.timeout(10)
            except Interrupt:
                pass
            yield env.timeout(2)
            log.append(env.now)

        def attacker(env, victim_proc):
            yield env.timeout(1)
            victim_proc.interrupt()

        proc = env.process(victim(env))
        env.process(attacker(env, proc))
        env.run()
        assert log == [3]

    def test_cannot_interrupt_self(self, env):
        def selfish(env):
            env.active_process.interrupt()
            yield env.timeout(1)

        env.process(selfish(env))
        with pytest.raises(RuntimeError):
            env.run()

    def test_cannot_interrupt_finished_process(self, env):
        def quick(env):
            yield env.timeout(1)

        proc = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            proc.interrupt()

    def test_interrupt_cause_str(self):
        interrupt = Interrupt("why")
        assert interrupt.cause == "why"
        assert "why" in str(interrupt)
