"""Unit tests for the Container resource (qubit-pool semantics)."""

import pytest

from repro.des import Container, Environment


class TestContainerValidation:
    def test_capacity_positive(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=0)

    def test_init_bounds(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=-1)
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=11)

    def test_amount_must_be_positive(self, env):
        container = Container(env, capacity=10, init=5)
        with pytest.raises(ValueError):
            container.get(0)
        with pytest.raises(ValueError):
            container.put(-2)


class TestContainerSemantics:
    def test_initial_level(self, env):
        container = Container(env, capacity=127, init=127)
        assert container.level == 127
        assert container.capacity == 127

    def test_get_and_put_adjust_level(self, env):
        container = Container(env, capacity=100, init=50)

        def proc(env, container, log):
            yield container.get(20)
            log.append(container.level)
            yield container.put(30)
            log.append(container.level)

        log = []
        env.process(proc(env, container, log))
        env.run()
        assert log == [30, 60]

    def test_get_blocks_until_available(self, env):
        container = Container(env, capacity=100, init=10)
        log = []

        def consumer(env, container):
            yield container.get(50)
            log.append(("got", env.now))

        def producer(env, container):
            yield env.timeout(5)
            yield container.put(45)

        env.process(consumer(env, container))
        env.process(producer(env, container))
        env.run()
        assert log == [("got", 5)]
        assert container.level == 5

    def test_put_blocks_when_full(self, env):
        container = Container(env, capacity=10, init=10)
        log = []

        def producer(env, container):
            yield container.put(3)
            log.append(("put done", env.now))

        def consumer(env, container):
            yield env.timeout(7)
            yield container.get(5)

        env.process(producer(env, container))
        env.process(consumer(env, container))
        env.run()
        assert log == [("put done", 7)]
        assert container.level == 8

    def test_multiple_getters_fifo_no_overdraw(self, env):
        container = Container(env, capacity=127, init=127)
        grants = []

        def getter(env, container, amount, name):
            yield container.get(amount)
            grants.append((name, env.now))
            yield env.timeout(10)
            yield container.put(amount)

        env.process(getter(env, container, 100, "a"))
        env.process(getter(env, container, 100, "b"))
        env.process(getter(env, container, 27, "c"))
        env.run()
        # "a" takes 100, leaving 27: "b" must wait for the release at t=10 even
        # though "c" could fit immediately (strict FIFO get queue).
        assert grants[0] == ("a", 0)
        assert ("b", 10) in grants

    def test_conservation_of_level(self, env):
        container = Container(env, capacity=1000, init=500)

        def churn(env, container, amount, cycles):
            for _ in range(cycles):
                yield container.get(amount)
                yield env.timeout(1)
                yield container.put(amount)

        for amount in (10, 20, 30):
            env.process(churn(env, container, amount, 5))
        env.run()
        assert container.level == 500

    def test_level_never_negative_or_above_capacity(self, env):
        container = Container(env, capacity=50, init=25)
        observed = []

        def monitor(env, container):
            while env.now < 20:
                observed.append(container.level)
                yield env.timeout(1)

        def worker(env, container):
            while env.now < 20:
                yield container.get(10)
                yield env.timeout(2)
                yield container.put(10)

        env.process(monitor(env, container))
        env.process(worker(env, container))
        env.run(until=20)
        assert all(0 <= level <= 50 for level in observed)
