"""Test package."""
