"""Unit tests for DES monitoring utilities."""

import pytest

from repro.des import Container, Environment
from repro.des.monitoring import EventLoopStats, PeriodicSampler, trace_events


class TestTraceEvents:
    def test_all_processed_events_traced(self, env):
        log = []
        trace_events(env, lambda t, prio, ev: log.append((t, type(ev).__name__)))

        def proc(env):
            yield env.timeout(2)
            yield env.timeout(3)

        env.process(proc(env))
        env.run()
        names = [name for _, name in log]
        assert "Initialize" in names
        assert names.count("Timeout") == 2
        assert "Process" in names
        times = [t for t, _ in log]
        assert times == sorted(times)

    def test_undo_restores_original_step(self, env):
        log = []
        undo = trace_events(env, lambda t, prio, ev: log.append(t))
        env.timeout(1)
        env.run()
        first_count = len(log)
        undo()
        env.timeout(1)
        env.run()
        assert len(log) == first_count


class TestPeriodicSampler:
    def test_samples_at_fixed_period(self, env):
        container = Container(env, capacity=100, init=100)

        def worker(env, container):
            yield container.get(40)
            yield env.timeout(5)
            yield container.put(40)

        env.process(worker(env, container))
        sampler = PeriodicSampler(env, lambda: container.level, period=1.0)
        env.run(until=8)
        assert sampler.times == [0.0] + [float(t) for t in range(1, 8)]
        assert sampler.values[0] in (100, 60)
        assert 60 in sampler.values
        assert sampler.values[-1] == 100

    def test_stop_ends_sampling(self, env):
        sampler = PeriodicSampler(env, lambda: 1, period=1.0)
        env.timeout(10)  # keep the schedule non-empty beyond the stop
        sampler.stop()
        env.run()
        assert len(sampler.samples) <= 2

    def test_invalid_period(self, env):
        with pytest.raises(ValueError):
            PeriodicSampler(env, lambda: 0, period=0.0)

    def test_delayed_start(self, env):
        sampler = PeriodicSampler(env, lambda: env.now, period=2.0, start_immediately=False)

        def background(env):
            yield env.timeout(5)

        env.process(background(env))
        env.run(until=5)
        assert sampler.times == [2.0, 4.0]


class TestEventLoopStats:
    def test_fresh_env_is_zeroed(self, env):
        stats = EventLoopStats.from_env(env)
        assert stats.events_processed == 0
        assert stats.batches_processed == 0
        assert stats.max_batch_size == 0
        assert stats.mean_batch_size == 0.0
        assert stats.events_per_second is None

    def test_counts_events_and_batches(self, env):
        for _ in range(5):
            env.timeout(3)  # same (time, priority): one drained batch
        env.timeout(7)
        env.run()
        stats = EventLoopStats.from_env(env)
        assert stats.events_processed == 6
        assert stats.batches_processed == 2
        assert stats.max_batch_size == 5
        assert stats.mean_batch_size == 3.0
        assert stats.peak_queue_size >= 6

    def test_same_timestamp_batch_preserves_order(self, env):
        order = []
        for i in range(4):
            env.timeout(1).callbacks.append(lambda ev, i=i: order.append(i))
        env.run()
        assert order == [0, 1, 2, 3]

    def test_priorities_split_batches(self, env):
        from repro.des.events import NORMAL, URGENT, Event

        order = []
        normal, urgent = Event(env), Event(env)
        normal.callbacks.append(lambda ev: order.append("normal"))
        urgent.callbacks.append(lambda ev: order.append("urgent"))
        env.schedule(normal, priority=NORMAL, delay=1)
        env.schedule(urgent, priority=URGENT, delay=1)
        env.run()
        assert order == ["urgent", "normal"]
        assert env.batches_processed == 2

    def test_events_per_second_needs_wall_time(self, env):
        env.timeout(1)
        env.run()
        assert EventLoopStats.from_env(env).events_per_second is None
        assert EventLoopStats.from_env(env, wall_seconds=0.0).events_per_second is None
        stats = EventLoopStats.from_env(env, wall_seconds=0.5)
        assert stats.events_per_second == 2.0

    def test_as_dict(self, env):
        env.timeout(1)
        env.run()
        payload = EventLoopStats.from_env(env).as_dict()
        assert payload == {
            "events_processed": 1,
            "batches_processed": 1,
            "mean_batch_size": 1.0,
            "max_batch_size": 1,
            "peak_queue_size": 1,
        }
        timed = EventLoopStats.from_env(env, wall_seconds=0.25).as_dict()
        assert timed["events_per_second"] == 4.0

    def test_rewind_resets_counters(self, env):
        env.timeout(1)
        env.run()
        assert env.events_processed == 1
        env.rewind()
        assert env.events_processed == 0
        assert env.batches_processed == 0
