"""Unit tests for DES monitoring utilities."""

import pytest

from repro.des import Container, Environment
from repro.des.monitoring import PeriodicSampler, trace_events


class TestTraceEvents:
    def test_all_processed_events_traced(self, env):
        log = []
        trace_events(env, lambda t, prio, ev: log.append((t, type(ev).__name__)))

        def proc(env):
            yield env.timeout(2)
            yield env.timeout(3)

        env.process(proc(env))
        env.run()
        names = [name for _, name in log]
        assert "Initialize" in names
        assert names.count("Timeout") == 2
        assert "Process" in names
        times = [t for t, _ in log]
        assert times == sorted(times)

    def test_undo_restores_original_step(self, env):
        log = []
        undo = trace_events(env, lambda t, prio, ev: log.append(t))
        env.timeout(1)
        env.run()
        first_count = len(log)
        undo()
        env.timeout(1)
        env.run()
        assert len(log) == first_count


class TestPeriodicSampler:
    def test_samples_at_fixed_period(self, env):
        container = Container(env, capacity=100, init=100)

        def worker(env, container):
            yield container.get(40)
            yield env.timeout(5)
            yield container.put(40)

        env.process(worker(env, container))
        sampler = PeriodicSampler(env, lambda: container.level, period=1.0)
        env.run(until=8)
        assert sampler.times == [0.0] + [float(t) for t in range(1, 8)]
        assert sampler.values[0] in (100, 60)
        assert 60 in sampler.values
        assert sampler.values[-1] == 100

    def test_stop_ends_sampling(self, env):
        sampler = PeriodicSampler(env, lambda: 1, period=1.0)
        env.timeout(10)  # keep the schedule non-empty beyond the stop
        sampler.stop()
        env.run()
        assert len(sampler.samples) <= 2

    def test_invalid_period(self, env):
        with pytest.raises(ValueError):
            PeriodicSampler(env, lambda: 0, period=0.0)

    def test_delayed_start(self, env):
        sampler = PeriodicSampler(env, lambda: env.now, period=2.0, start_immediately=False)

        def background(env):
            yield env.timeout(5)

        env.process(background(env))
        env.run(until=5)
        assert sampler.times == [2.0, 4.0]
