"""Unit tests for Resource / PriorityResource / PreemptiveResource."""

import pytest

from repro.des import Environment, Interrupt, PreemptiveResource, PriorityResource, Resource
from repro.des.resources.resource import Preempted


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_count_and_queue(self, env):
        res = Resource(env, capacity=1)
        log = []

        def user(env, res, name, hold):
            with res.request() as req:
                yield req
                log.append((env.now, name, "acquired", res.count))
                yield env.timeout(hold)
            log.append((env.now, name, "released", res.count))

        env.process(user(env, res, "a", 5))
        env.process(user(env, res, "b", 3))
        env.run()
        assert log[0] == (0, "a", "acquired", 1)
        # b must wait for a to release at t=5.
        assert (5, "b", "acquired", 1) in log
        assert log[-1] == (8, "b", "released", 0)

    def test_parallel_users_up_to_capacity(self, env):
        res = Resource(env, capacity=2)
        acquired_at = []

        def user(env, res):
            with res.request() as req:
                yield req
                acquired_at.append(env.now)
                yield env.timeout(10)

        for _ in range(3):
            env.process(user(env, res))
        env.run()
        assert acquired_at == [0, 0, 10]

    def test_release_without_context_manager(self, env):
        res = Resource(env, capacity=1)

        def user(env, res, log):
            req = res.request()
            yield req
            log.append(res.count)
            yield env.timeout(1)
            yield res.release(req)
            log.append(res.count)

        log = []
        env.process(user(env, res, log))
        env.run()
        assert log == [1, 0]

    def test_queue_is_fifo(self, env):
        res = Resource(env, capacity=1)
        order = []

        def user(env, res, name):
            with res.request() as req:
                yield req
                order.append(name)
                yield env.timeout(1)

        for name in ["first", "second", "third"]:
            env.process(user(env, res, name))
        env.run()
        assert order == ["first", "second", "third"]

    def test_cancelled_request_leaves_queue(self, env):
        res = Resource(env, capacity=1)

        def holder(env, res):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def impatient(env, res, log):
            req = res.request()
            result = yield req | env.timeout(2)
            if req not in result:
                req.cancel()
                log.append("gave up")

        log = []
        env.process(holder(env, res))
        env.process(impatient(env, res, log))
        env.run()
        assert log == ["gave up"]
        assert len(res.queue) == 0


class TestPriorityResource:
    def test_priority_order(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def user(env, res, name, priority, delay):
            yield env.timeout(delay)
            with res.request(priority=priority) as req:
                yield req
                order.append(name)
                yield env.timeout(10)

        env.process(user(env, res, "holder", 0, 0))
        env.process(user(env, res, "low", 5, 1))
        env.process(user(env, res, "high", -5, 2))
        env.run()
        # After the holder releases, the high-priority request (arriving later)
        # must be served before the low-priority one.
        assert order == ["holder", "high", "low"]

    def test_equal_priority_fifo(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def user(env, res, name, delay):
            yield env.timeout(delay)
            with res.request(priority=1) as req:
                yield req
                order.append(name)
                yield env.timeout(5)

        env.process(user(env, res, "a", 0))
        env.process(user(env, res, "b", 1))
        env.process(user(env, res, "c", 2))
        env.run()
        assert order == ["a", "b", "c"]


class TestPreemptiveResource:
    def test_preemption_interrupts_lower_priority_user(self, env):
        res = PreemptiveResource(env, capacity=1)
        log = []

        def low(env, res):
            with res.request(priority=10) as req:
                yield req
                try:
                    yield env.timeout(100)
                except Interrupt as interrupt:
                    cause = interrupt.cause
                    assert isinstance(cause, Preempted)
                    log.append(("preempted", env.now, cause.usage_since))

        def high(env, res):
            yield env.timeout(5)
            with res.request(priority=-1) as req:
                yield req
                log.append(("high acquired", env.now))
                yield env.timeout(1)

        env.process(low(env, res))
        env.process(high(env, res))
        env.run()
        assert ("preempted", 5, 0) in log
        assert ("high acquired", 5) in log

    def test_no_preemption_when_disabled(self, env):
        res = PreemptiveResource(env, capacity=1)
        log = []

        def low(env, res):
            with res.request(priority=10) as req:
                yield req
                yield env.timeout(20)
                log.append(("low done", env.now))

        def polite(env, res):
            yield env.timeout(5)
            with res.request(priority=-1, preempt=False) as req:
                yield req
                log.append(("polite acquired", env.now))

        env.process(low(env, res))
        env.process(polite(env, res))
        env.run()
        assert log == [("low done", 20), ("polite acquired", 20)]
