"""Property-based tests of the DES kernel (hypothesis).

The kernel's guarantees, whatever the workload:

* the clock never goes backwards while processing events,
* timeouts fire exactly at their scheduled times, in nondecreasing order,
* container levels stay within [0, capacity] and are conserved by
  balanced get/put sequences,
* resources never admit more concurrent users than their capacity.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Container, Environment, Resource


@settings(max_examples=100, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False), min_size=1, max_size=50))
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append((env.now, delay))

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()

    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)
    # Every timeout fired exactly at its delay (single-shot processes from t=0).
    for time, delay in fired:
        assert time == pytest.approx(delay)


@settings(max_examples=100, deadline=None)
@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=30),
    until=st.floats(min_value=0.5, max_value=120.0, allow_nan=False),
)
def test_run_until_processes_exactly_the_events_before_the_horizon(delays, until):
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(delay)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run(until=until)

    assert sorted(fired) == sorted(d for d in delays if d < until)
    assert env.now == pytest.approx(until)


@settings(max_examples=75, deadline=None)
@given(
    amounts=st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=20),
    capacity=st.integers(min_value=40, max_value=200),
)
def test_container_conservation_under_concurrent_churn(amounts, capacity):
    env = Environment()
    container = Container(env, capacity=capacity, init=capacity)
    observed_levels = []

    def churn(env, container, amount):
        yield container.get(amount)
        observed_levels.append(container.level)
        yield env.timeout(1)
        yield container.put(amount)
        observed_levels.append(container.level)

    for amount in amounts:
        env.process(churn(env, container, amount))
    env.run()

    assert container.level == capacity
    assert all(0 <= level <= capacity for level in observed_levels)


@settings(max_examples=50, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=5),
    hold_times=st.lists(st.floats(min_value=0.1, max_value=5.0, allow_nan=False), min_size=1, max_size=15),
)
def test_resource_never_oversubscribed(capacity, hold_times):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    max_seen = 0

    def user(env, resource, hold):
        nonlocal max_seen
        with resource.request() as req:
            yield req
            max_seen = max(max_seen, resource.count)
            yield env.timeout(hold)

    for hold in hold_times:
        env.process(user(env, resource, hold))
    env.run()

    assert max_seen <= capacity
    assert resource.count == 0
    assert len(resource.queue) == 0


@settings(max_examples=50, deadline=None)
@given(
    seed_delays=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_simulation_is_deterministic_for_identical_programs(seed_delays):
    def simulate():
        env = Environment()
        trace = []

        def proc(env, first, second, label):
            yield env.timeout(first)
            trace.append((env.now, label, "a"))
            yield env.timeout(second)
            trace.append((env.now, label, "b"))

        for i, (first, second) in enumerate(seed_delays):
            env.process(proc(env, first, second, i))
        env.run()
        return trace

    assert simulate() == simulate()
