"""Unit tests for the DES event types."""

import pytest

from repro.des import AllOf, AnyOf, Environment, Event, Timeout
from repro.des.events import PENDING


class TestEvent:
    def test_new_event_is_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_before_trigger(self, env):
        event = env.event()
        with pytest.raises(AttributeError):
            _ = event.value
        with pytest.raises(AttributeError):
            _ = event.ok

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_twice_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_fail_sets_not_ok(self, env):
        event = env.event()
        exc = ValueError("boom")
        event.fail(exc)
        event.defused = True
        assert event.triggered
        assert not event.ok
        assert event.value is exc

    def test_callbacks_invoked_on_processing(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("payload")
        env.run()
        assert seen == ["payload"]
        assert event.processed

    def test_repr_mentions_state(self, env):
        event = env.event()
        assert "pending" in repr(event)
        event.succeed()
        assert "triggered" in repr(event)


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_fires_at_delay(self, env):
        times = []
        t = env.timeout(5, value="done")
        t.callbacks.append(lambda e: times.append(env.now))
        env.run()
        assert times == [5]
        assert t.value == "done"

    def test_zero_delay_fires_immediately(self, env):
        t = env.timeout(0)
        env.run()
        assert t.processed
        assert env.now == 0

    def test_delay_property(self, env):
        assert env.timeout(3.5).delay == 3.5


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        t1, t2 = env.timeout(1, value="a"), env.timeout(3, value="b")
        cond = AllOf(env, [t1, t2])
        env.run()
        assert cond.processed
        assert cond.value[t1] == "a"
        assert cond.value[t2] == "b"
        assert env.now == 3

    def test_any_of_fires_on_first(self, env):
        t1, t2 = env.timeout(1, value="a"), env.timeout(3, value="b")
        done_at = []
        cond = AnyOf(env, [t1, t2])
        cond.callbacks.append(lambda e: done_at.append(env.now))
        env.run()
        assert done_at == [1]

    def test_and_operator(self, env):
        t1, t2 = env.timeout(1), env.timeout(2)
        cond = t1 & t2
        env.run()
        assert cond.processed
        assert env.now == 2

    def test_or_operator(self, env):
        t1, t2 = env.timeout(1), env.timeout(2)
        results = {}

        def proc(env):
            value = yield t1 | t2
            results["value"] = value
            results["time"] = env.now

        env.process(proc(env))
        env.run()
        assert results["time"] == 1
        assert t1 in results["value"]
        assert t2 not in results["value"]

    def test_empty_all_of_succeeds_immediately(self, env):
        cond = env.all_of([])
        env.run()
        assert cond.processed

    def test_condition_value_mapping_interface(self, env):
        t1 = env.timeout(1, value="x")
        cond = env.all_of([t1])
        env.run()
        value = cond.value
        assert t1 in value
        assert list(value.keys()) == [t1]
        assert list(value.values()) == ["x"]
        assert value.todict() == {t1: "x"}
        assert value == {t1: "x"}

    def test_condition_events_must_share_environment(self, env):
        other = Environment()
        t1 = env.timeout(1)
        t2 = other.timeout(1)
        with pytest.raises(ValueError):
            AllOf(env, [t1, t2])

    def test_condition_failure_propagates(self, env):
        def failing(env):
            yield env.timeout(1)
            raise RuntimeError("inner failure")

        def waiter(env, log):
            proc = env.process(failing(env))
            try:
                yield env.all_of([proc, env.timeout(5)])
            except RuntimeError as exc:
                log.append(str(exc))

        log = []
        env.process(waiter(env, log))
        env.run()
        assert log == ["inner failure"]

    def test_nested_conditions_collect_values(self, env):
        t1, t2, t3 = env.timeout(1, value=1), env.timeout(2, value=2), env.timeout(3, value=3)
        cond = (t1 & t2) & t3
        env.run()
        assert cond.value[t1] == 1
        assert cond.value[t2] == 2
        assert cond.value[t3] == 3
