"""Unit tests for the DES environment / event loop."""

import pytest

from repro.des import Environment
from repro.des.environment import EmptySchedule


class TestClock:
    def test_initial_time(self):
        assert Environment().now == 0
        assert Environment(initial_time=10).now == 10

    def test_peek_empty(self, env):
        assert env.peek() == float("inf")

    def test_peek_returns_next_event_time(self, env):
        env.timeout(7)
        env.timeout(3)
        assert env.peek() == 3

    def test_step_advances_clock(self, env):
        env.timeout(4)
        env.step()
        assert env.now == 4

    def test_step_empty_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_queue_size(self, env):
        env.timeout(1)
        env.timeout(2)
        assert env.queue_size == 2


class TestRun:
    def test_run_until_time(self, env):
        ticks = []

        def clock(env):
            while True:
                ticks.append(env.now)
                yield env.timeout(1)

        env.process(clock(env))
        env.run(until=5)
        assert ticks == [0, 1, 2, 3, 4]
        assert env.now == 5

    def test_run_until_time_in_past_raises(self, env):
        env.run(until=5)
        with pytest.raises(ValueError):
            env.run(until=3)

    def test_run_until_event_returns_value(self, env):
        t = env.timeout(2, value="finished")
        assert env.run(until=t) == "finished"
        assert env.now == 2

    def test_run_until_already_processed_event(self, env):
        t = env.timeout(1, value="v")
        env.run()
        assert env.run(until=t) == "v"

    def test_run_to_exhaustion(self, env):
        env.timeout(1)
        env.timeout(10)
        env.run()
        assert env.now == 10

    def test_run_until_unreachable_event_raises(self, env):
        pending = env.event()
        env.timeout(1)
        with pytest.raises(RuntimeError):
            env.run(until=pending)

    def test_unhandled_process_failure_crashes_run(self, env):
        def bad(env):
            yield env.timeout(1)
            raise KeyError("unhandled")

        env.process(bad(env))
        with pytest.raises(KeyError):
            env.run()

    def test_rewind_clears_queue(self, env):
        env.timeout(5)
        env.rewind()
        assert env.queue_size == 0
        assert env.now == 0


class TestDeterminism:
    def test_same_time_events_fifo(self, env):
        order = []
        for label in "abc":
            t = env.timeout(1, value=label)
            t.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == ["a", "b", "c"]

    def test_interleaved_processes_are_deterministic(self):
        def worker(env, name, log, period):
            while env.now < 10:
                log.append((env.now, name))
                yield env.timeout(period)

        def simulate():
            env = Environment()
            log = []
            env.process(worker(env, "w1", log, 2))
            env.process(worker(env, "w2", log, 3))
            env.run(until=10)
            return log

        assert simulate() == simulate()

    def test_event_ordering_monotone_nondecreasing(self, env):
        seen = []

        def proc(env, delay):
            yield env.timeout(delay)
            seen.append(env.now)

        for delay in [5, 1, 3, 3, 0, 2]:
            env.process(proc(env, delay))
        env.run()
        assert seen == sorted(seen)
