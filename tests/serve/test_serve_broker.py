"""Serve-broker behaviour: fair-share dispatch, overtaking, preemption,
admission rejection accounting and seed determinism."""

import pytest

from repro.circuits.circuit import CircuitSpec
from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.cloud.qjob import QJob, QJobStatus
from repro.hardware.backends import get_device_profile
from repro.serve import AdmissionSpec, SLOSpec, TenantMix, TenantSpec


def one_device():
    """A single 127-qubit device: jobs sized 127 run strictly one at a time."""
    return [get_device_profile("ibm_brussels")]


def make_job(job_id, tenant, q=127, arrival=0.0, shots=50_000, priority=0):
    circuit = CircuitSpec(
        num_qubits=q,
        depth=8,
        num_shots=shots,
        num_two_qubit_gates=12,
        num_single_qubit_gates=30,
        name=f"job_{job_id}",
    )
    return QJob(
        job_id=job_id, circuit=circuit, arrival_time=arrival, tenant=tenant, priority=priority
    )


def run_env(mix, jobs, devices=None, **config_kwargs):
    config = SimulationConfig(num_jobs=max(1, len(jobs)), **config_kwargs)
    env = QCloudSimEnv(
        config=config, devices=devices or one_device(), jobs=jobs, tenants=mix
    )
    records = env.run_until_complete()
    return env, records


def start_order(records):
    return [r.job_id for r in sorted(records, key=lambda r: (r.start_time, r.job_id))]


class TestWeightedFairDispatch:
    def test_weights_split_same_class_capacity(self):
        """Weight-3 tenant gets 3 of the first 4 dispatch slots (SFQ tags)."""
        mix = TenantMix(
            name="wfq",
            tenants=(
                TenantSpec(name="heavy", priority_class=1, weight=3.0),
                TenantSpec(name="light", priority_class=1, weight=1.0),
            ),
        )
        jobs = [make_job(i, "heavy") for i in range(4)]
        jobs += [make_job(4 + i, "light") for i in range(4)]
        env, records = run_env(mix, jobs)

        assert len(records) == 8
        # Virtual finish tags: heavy = 42.3, 84.7, 127, 169.3; light = 127,
        # 254, 381, 508.  Ties (127) break by submission order.
        assert start_order(records) == [0, 1, 2, 4, 3, 5, 6, 7]

    def test_equal_weights_interleave(self):
        mix = TenantMix(
            name="even",
            tenants=(
                TenantSpec(name="a", priority_class=1, weight=1.0),
                TenantSpec(name="b", priority_class=1, weight=1.0),
            ),
        )
        jobs = [make_job(i, "a") for i in range(3)]
        jobs += [make_job(3 + i, "b") for i in range(3)]
        env, records = run_env(mix, jobs)
        # Equal tags alternate a/b by submission order within each tag value.
        assert start_order(records) == [0, 3, 1, 4, 2, 5]


class TestPriorityClasses:
    def test_premium_overtakes_queued_backlog(self):
        """A later premium arrival runs before already-queued lower class jobs."""
        mix = TenantMix(
            name="classes",
            tenants=(
                TenantSpec(name="premium", priority_class=0),
                TenantSpec(name="free", priority_class=2),
            ),
        )
        jobs = [make_job(i, "free", arrival=0.0) for i in range(3)]
        jobs.append(make_job(10, "premium", arrival=5.0))
        env, records = run_env(mix, jobs)

        order = start_order(records)
        # free job 0 is already running at t=5; the premium job overtakes
        # the two queued free jobs (the parked floor holder yields).
        assert order[0] == 0
        assert order[1] == 10
        assert set(order[2:]) == {1, 2}

    def test_job_priority_breaks_ties_within_class(self):
        """QJob.priority (smaller = more important) orders same-tag jobs."""
        mix = TenantMix(
            name="prio", tenants=(TenantSpec(name="t", priority_class=1),)
        )
        # Same arrival, same size: the fair tags are assigned in submission
        # order, and submission order honours job priority.
        jobs = [
            make_job(0, "t", priority=5),
            make_job(1, "t", priority=0),
            make_job(2, "t", priority=3),
        ]
        env, records = run_env(mix, jobs)
        assert start_order(records) == [1, 2, 0]


class TestPreemption:
    def mix(self, deadline=50.0):
        return TenantMix(
            name="preempt",
            tenants=(
                TenantSpec(name="premium", priority_class=0, slo=SLOSpec(queue_deadline=deadline)),
                TenantSpec(name="batch", priority_class=2),
            ),
        )

    def test_deadline_preempts_lower_class(self):
        """A premium job past its queueing SLO aborts a running batch job."""
        jobs = [make_job(0, "batch", q=600, arrival=0.0)]
        jobs.append(make_job(1, "premium", q=600, arrival=10.0, shots=20_000))
        devices = [
            get_device_profile(name)
            for name in ("ibm_brussels", "ibm_strasbourg", "ibm_quebec",
                         "ibm_kyiv", "ibm_kawasaki")
        ]
        env, records = run_env(self.mix(), jobs, devices=devices)

        assert len(records) == 2
        premium = env.records.record_for(1)
        batch = env.records.record_for(0)
        # The premium job starts exactly at its deadline (arrival 10 + 50).
        assert premium.start_time == pytest.approx(60.0)
        assert premium.wait_time == pytest.approx(50.0)
        # The batch job was preempted once, requeued, and finished later.
        assert batch.retries == 1
        assert batch.start_time > premium.start_time
        assert env.broker.preempted_total == 1
        events = [e.event for e in env.records.events_for(0)]
        assert "preempted" in events and "requeue" in events

    def test_preemption_requeue_ordering(self):
        """A preempted victim re-enters the queue behind its class peers'
        fair-share position and runs only after the preemptor finished."""
        jobs = [make_job(0, "batch", q=600, arrival=0.0)]
        jobs.append(make_job(1, "premium", q=600, arrival=10.0, shots=20_000))
        devices = [
            get_device_profile(name)
            for name in ("ibm_brussels", "ibm_strasbourg", "ibm_quebec",
                         "ibm_kyiv", "ibm_kawasaki")
        ]
        env, records = run_env(self.mix(), jobs, devices=devices)
        premium = env.records.record_for(1)
        batch = env.records.record_for(0)
        assert batch.start_time >= premium.finish_time
        # Requeue and preemption were logged at the preemption instant.
        (preempt_event,) = [e for e in env.records.events_for(0) if e.event == "preempted"]
        assert preempt_event.time == pytest.approx(60.0)
        assert "by job 1 (premium)" in preempt_event.detail

    def test_no_preemption_within_same_class(self):
        """Deadline misses never abort equal-or-higher-class jobs."""
        mix = TenantMix(
            name="same-class",
            tenants=(
                TenantSpec(name="a", priority_class=1, slo=SLOSpec(queue_deadline=10.0)),
                TenantSpec(name="b", priority_class=1),
            ),
        )
        jobs = [make_job(0, "b", arrival=0.0), make_job(1, "a", arrival=0.0)]
        env, records = run_env(mix, jobs)
        assert env.broker.preempted_total == 0
        assert env.records.record_for(0).retries == 0


class TestAdmissionRejection:
    def test_queue_cap_sheds_batch_arrivals(self):
        mix = TenantMix(
            name="cap",
            tenants=(
                TenantSpec(name="t", admission=AdmissionSpec(max_queued=2)),
            ),
        )
        jobs = [make_job(i, "t") for i in range(5)]
        env, records = run_env(mix, jobs)

        # All five arrive in one batch: two fill the queue slots before any
        # job can start, the remaining three are shed.
        assert len(env.broker.rejected_jobs) == 3
        assert len(records) == 2
        rejected_ids = {j.job_id for j in env.broker.rejected_jobs}
        assert all(env.records.record_for(i) is None for i in rejected_ids)
        for job in env.broker.rejected_jobs:
            assert job.status is QJobStatus.REJECTED
        rejected_events = [e for e in env.records.events if e.event == "rejected"]
        assert {e.job_id for e in rejected_events} == rejected_ids
        assert all(e.detail == "t:queue_full" for e in rejected_events)

        (report,) = env.tenant_reports()
        assert report.submitted == 5
        assert report.completed == 2
        assert report.rejected == 3
        assert report.attainment == pytest.approx(2 / 5)

    def test_rate_limit_sheds_burst(self):
        mix = TenantMix(
            name="rate",
            tenants=(
                TenantSpec(name="t", admission=AdmissionSpec(rate=0.001, burst=2.0)),
            ),
        )
        jobs = [make_job(i, "t") for i in range(4)]
        env, records = run_env(mix, jobs)
        assert len(records) == 2
        rejected_events = [e for e in env.records.events if e.event == "rejected"]
        assert len(rejected_events) == 2
        assert all(e.detail == "t:rate_limit" for e in rejected_events)


class TestDeterminism:
    @pytest.mark.parametrize("mix_name", ["free-tier-vs-premium", "noisy-neighbor"])
    def test_same_seed_bit_identical(self, mix_name):
        def run():
            config = SimulationConfig(num_jobs=30, seed=11, tenants=mix_name)
            env = QCloudSimEnv(config)
            records = env.run_until_complete()
            return records, env.tenant_reports(), env.records.events

        records_a, reports_a, events_a = run()
        records_b, reports_b, events_b = run()
        assert [r.as_dict() for r in records_a] == [r.as_dict() for r in records_b]
        assert reports_a == reports_b
        assert events_a == events_b

    def test_different_seeds_differ(self):
        def run(seed):
            env = QCloudSimEnv(
                SimulationConfig(num_jobs=30, seed=seed, tenants="free-tier-vs-premium")
            )
            return env.run_until_complete()

        assert [r.as_dict() for r in run(1)] != [r.as_dict() for r in run(2)]

    def test_fully_untagged_workload_is_routed_by_share(self):
        """An explicit workload with no tenant tags is routed like scenario
        traffic instead of silently landing on the default tenant."""
        mix = TenantMix(
            name="routed",
            tenants=(
                TenantSpec(name="main", share=0.5),
                TenantSpec(name="other", priority_class=1, share=0.5),
            ),
        )
        jobs = [make_job(i, tenant=None) for i in range(20)]
        env, records = run_env(mix, jobs)
        tenants = {r.tenant for r in records}
        assert tenants == {"main", "other"}
        reports = {r.tenant: r for r in env.tenant_reports()}
        assert reports["main"].submitted + reports["other"].submitted == 20
        assert reports["main"].submitted > 0 and reports["other"].submitted > 0

    def test_routing_does_not_mutate_callers_workload(self):
        """The same explicit workload is reusable across different mixes."""
        mix_a = TenantMix(
            name="mix-a",
            tenants=(TenantSpec(name="x", share=0.5),
                     TenantSpec(name="y", priority_class=1, share=0.5)),
        )
        mix_b = TenantMix(
            name="mix-b",
            tenants=(TenantSpec(name="p", share=0.5),
                     TenantSpec(name="q", priority_class=1, share=0.5)),
        )
        jobs = [make_job(i, tenant=None) for i in range(6)]
        _, records_a = run_env(mix_a, jobs)
        assert all(job.tenant is None for job in jobs)  # caller's objects untouched
        _, records_b = run_env(mix_b, jobs)
        assert {r.tenant for r in records_a} <= {"x", "y"}
        assert {r.tenant for r in records_b} <= {"p", "q"}

    def test_partially_tagged_workload_stamps_default(self):
        """Untagged stragglers in a tagged workload get the default tenant."""
        mix = TenantMix(
            name="default-stamp",
            tenants=(TenantSpec(name="main"), TenantSpec(name="other", priority_class=1)),
        )
        jobs = [make_job(0, tenant="other"), make_job(1, tenant=None)]
        env, records = run_env(mix, jobs)
        by_id = {r.job_id: r.tenant for r in records}
        assert by_id == {0: "other", 1: "main"}

    def test_unknown_tenant_tag_raises(self):
        """A typo'd tenant tag must fail loudly, not corrupt the accounting."""
        mix = TenantMix(name="strict", tenants=(TenantSpec(name="main"),))
        with pytest.raises(KeyError, match="unknown tenant"):
            run_env(mix, [make_job(0, tenant="mian")])
