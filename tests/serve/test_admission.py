"""Admission-controller unit tests: token buckets, queue caps, accounting."""

import pytest

from repro.serve import AdmissionController, AdmissionSpec, TenantMix, TenantSpec


def mix_with(admission: AdmissionSpec) -> TenantMix:
    return TenantMix(name="m", tenants=(TenantSpec(name="t", admission=admission),))


class TestTokenBucket:
    def test_burst_then_rate_limit(self):
        controller = AdmissionController(mix_with(AdmissionSpec(rate=0.1, burst=2.0)))
        assert controller.admit("t", 0.0).admitted
        assert controller.admit("t", 0.0).admitted
        decision = controller.admit("t", 0.0)
        assert not decision.admitted
        assert decision.reason == "rate_limit"
        assert controller.rejections("t") == 1

    def test_refill_over_time(self):
        controller = AdmissionController(mix_with(AdmissionSpec(rate=0.1, burst=2.0)))
        for _ in range(2):
            assert controller.admit("t", 0.0).admitted
        assert not controller.admit("t", 0.0).admitted
        # 10 seconds at 0.1 tokens/s refills exactly one token.
        assert controller.admit("t", 10.0).admitted
        assert not controller.admit("t", 10.0).admitted

    def test_bucket_never_exceeds_burst(self):
        controller = AdmissionController(mix_with(AdmissionSpec(rate=1.0, burst=3.0)))
        # A long quiet period still caps the bucket at `burst` tokens.
        for _ in range(3):
            assert controller.admit("t", 1000.0).admitted
        assert not controller.admit("t", 1000.0).admitted

    def test_unlimited_admits_everything(self):
        controller = AdmissionController(mix_with(AdmissionSpec()))
        for i in range(100):
            assert controller.admit("t", 0.0).admitted
        assert controller.rejections("t") == 0
        assert controller.tokens("t") is None


class TestQueueCap:
    def test_rejects_when_queue_full(self):
        controller = AdmissionController(mix_with(AdmissionSpec(max_queued=2)))
        assert controller.admit("t", 0.0).admitted
        assert controller.admit("t", 0.0).admitted
        decision = controller.admit("t", 0.0)
        assert not decision.admitted
        assert decision.reason == "queue_full"

    def test_start_frees_queue_slot(self):
        controller = AdmissionController(mix_with(AdmissionSpec(max_queued=1)))
        assert controller.admit("t", 0.0).admitted
        assert not controller.admit("t", 1.0).admitted
        controller.job_started("t")
        assert controller.queued("t") == 0
        assert controller.admit("t", 2.0).admitted

    def test_requeue_reoccupies_slot(self):
        controller = AdmissionController(mix_with(AdmissionSpec(max_queued=1)))
        assert controller.admit("t", 0.0).admitted
        controller.job_started("t")
        controller.job_requeued("t")
        assert controller.queued("t") == 1
        assert not controller.admit("t", 3.0).admitted

    def test_underflow_raises(self):
        controller = AdmissionController(mix_with(AdmissionSpec()))
        with pytest.raises(RuntimeError):
            controller.job_started("t")


class TestRateActuation:
    """``rate``/``set_rate``: the AIMD admission controller's actuator."""

    def test_rate_reads_configured_refill(self):
        controller = AdmissionController(mix_with(AdmissionSpec(rate=0.1, burst=2.0)))
        assert controller.rate("t") == 0.1

    def test_rate_is_none_without_bucket(self):
        controller = AdmissionController(mix_with(AdmissionSpec()))
        assert controller.rate("t") is None

    def test_set_rate_changes_future_refill(self):
        controller = AdmissionController(mix_with(AdmissionSpec(rate=0.1, burst=2.0)))
        for _ in range(2):
            assert controller.admit("t", 0.0).admitted
        controller.set_rate("t", 0.2, now=0.0)
        assert controller.rate("t") == 0.2
        # 5 seconds at the new 0.2 tokens/s refills one token.
        assert controller.admit("t", 5.0).admitted
        assert not controller.admit("t", 5.0).admitted

    def test_set_rate_settles_accrual_at_old_rate(self):
        controller = AdmissionController(mix_with(AdmissionSpec(rate=0.1, burst=1.0)))
        controller.admit("t", 0.0)
        # 10 idle seconds accrued at 0.1 tokens/s before the change; the
        # switch must bank that token rather than re-price history.
        controller.set_rate("t", 0.0001, now=10.0)
        assert controller.admit("t", 10.0).admitted
        assert not controller.admit("t", 10.0).admitted

    def test_set_rate_validates(self):
        controller = AdmissionController(mix_with(AdmissionSpec(rate=0.1, burst=2.0)))
        with pytest.raises(ValueError):
            controller.set_rate("t", 0.0, now=0.0)
        unbucketed = AdmissionController(mix_with(AdmissionSpec()))
        with pytest.raises(KeyError):
            unbucketed.set_rate("t", 0.5, now=0.0)


class TestPerTenantIsolation:
    def test_buckets_are_independent(self):
        mix = TenantMix(
            name="m",
            tenants=(
                TenantSpec(name="limited", admission=AdmissionSpec(rate=0.01, burst=1.0)),
                TenantSpec(name="open"),
            ),
        )
        controller = AdmissionController(mix)
        assert controller.admit("limited", 0.0).admitted
        assert not controller.admit("limited", 0.0).admitted
        # The other tenant is unaffected.
        for _ in range(10):
            assert controller.admit("open", 0.0).admitted
        assert controller.rejections("open") == 0
        assert controller.rejections("limited") == 1
