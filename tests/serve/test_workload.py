"""Multi-tenant workload generation: apportionment, merging, routing."""

import pytest

from repro.cloud.config import SimulationConfig
from repro.dynamics.scenario import TrafficSpec
from repro.serve import (
    TenantMix,
    TenantSpec,
    apportion_jobs,
    get_tenant_mix,
    route_jobs_to_tenants,
    tenant_jobs,
)


def two_tenant_mix(share_a=0.3, share_b=0.7):
    return TenantMix(
        name="m",
        tenants=(
            TenantSpec(
                name="a",
                share=share_a,
                traffic=TrafficSpec(model="poisson", rate=0.05),
                job_priority=1,
            ),
            TenantSpec(name="b", share=share_b, qubit_range=(150, 200)),
        ),
    )


class TestApportionment:
    def test_exact_shares(self):
        assert apportion_jobs(two_tenant_mix(), 10) == [3, 7]

    def test_largest_remainder(self):
        mix = TenantMix(
            name="m",
            tenants=(
                TenantSpec(name="a", share=1.0),
                TenantSpec(name="b", share=1.0),
                TenantSpec(name="c", share=1.0),
            ),
        )
        counts = apportion_jobs(mix, 10)
        assert sum(counts) == 10
        assert counts == [4, 3, 3]  # leftover goes to the earliest tenant

    def test_total_is_preserved(self):
        for n in (1, 7, 99):
            assert sum(apportion_jobs(two_tenant_mix(), n)) == n

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            apportion_jobs(two_tenant_mix(), 0)


class TestTenantJobs:
    def config(self, n=20, seed=5):
        return SimulationConfig(num_jobs=n, seed=seed)

    def test_passthrough_returns_none(self):
        assert tenant_jobs(get_tenant_mix("single"), self.config()) is None

    def test_merged_workload_shape(self):
        jobs = tenant_jobs(two_tenant_mix(), self.config(n=20))
        assert jobs is not None
        assert len(jobs) == 20
        # Ids are globally unique and renumbered in arrival order.
        assert sorted(j.job_id for j in jobs) == list(range(20))
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)
        # Both tenants contributed their share and are tagged.
        by_tenant = {"a": 0, "b": 0}
        for job in jobs:
            by_tenant[job.tenant] += 1
        assert by_tenant == {"a": 6, "b": 14}

    def test_tenant_overrides_applied(self):
        jobs = tenant_jobs(two_tenant_mix(), self.config(n=20))
        for job in jobs:
            if job.tenant == "b":
                assert 150 <= job.num_qubits <= 200
            else:
                assert job.priority == 1  # job_priority stamped

    def test_deterministic_in_seed(self):
        a = tenant_jobs(two_tenant_mix(), self.config(seed=5))
        b = tenant_jobs(two_tenant_mix(), self.config(seed=5))
        c = tenant_jobs(two_tenant_mix(), self.config(seed=6))
        assert [j.as_dict() for j in a] == [j.as_dict() for j in b]
        assert [j.as_dict() for j in a] != [j.as_dict() for j in c]


class TestRouting:
    def test_routes_all_jobs_deterministically(self):
        from repro.cloud.job_generator import generate_synthetic_jobs

        jobs = generate_synthetic_jobs(num_jobs=50, seed=9)
        routed = route_jobs_to_tenants(jobs, two_tenant_mix(), seed=9)
        assert all(j.tenant in ("a", "b") for j in routed)
        counts = {"a": 0, "b": 0}
        for job in routed:
            counts[job.tenant] += 1
        assert counts["a"] > 0 and counts["b"] > 0
        assert counts["b"] > counts["a"]  # 0.7 share dominates

        jobs2 = generate_synthetic_jobs(num_jobs=50, seed=9)
        routed2 = route_jobs_to_tenants(jobs2, two_tenant_mix(), seed=9)
        assert [j.tenant for j in routed] == [j.tenant for j in routed2]

    def test_tenant_tags_survive_csv_roundtrip(self, tmp_path):
        from repro.cloud.io import jobs_from_csv, jobs_to_csv
        from repro.cloud.job_generator import generate_synthetic_jobs

        routed = route_jobs_to_tenants(
            generate_synthetic_jobs(num_jobs=10, seed=3), two_tenant_mix(), seed=3
        )
        path = str(tmp_path / "jobs.csv")
        jobs_to_csv(routed, path)
        loaded = jobs_from_csv(path)
        assert [j.tenant for j in loaded] == [j.tenant for j in routed]
        assert [j.as_dict() for j in loaded] == [j.as_dict() for j in routed]

    def test_routing_preserves_explicit_priorities(self):
        from repro.cloud.job_generator import generate_synthetic_jobs

        jobs = generate_synthetic_jobs(num_jobs=10, seed=3)
        jobs[0].priority = -7
        routed = route_jobs_to_tenants(jobs, two_tenant_mix(), seed=3)
        assert routed[0].priority == -7  # explicit priority kept
        # Default-priority jobs routed to tenant "a" inherit job_priority=1.
        for job in routed[1:]:
            assert job.priority == (1 if job.tenant == "a" else 0)

    def test_single_tenant_routing_tags_everything(self):
        from repro.cloud.job_generator import generate_synthetic_jobs

        mix = TenantMix(name="m", tenants=(TenantSpec(name="only", job_priority=2),))
        jobs = route_jobs_to_tenants(generate_synthetic_jobs(5, seed=1), mix, seed=1)
        assert all(j.tenant == "only" and j.priority == 2 for j in jobs)

    def test_scenario_traffic_reaches_tenants_end_to_end(self):
        """A traffic scenario shapes arrivals; the mix owns the jobs."""
        from repro.cloud.environment import QCloudSimEnv

        config = SimulationConfig(
            num_jobs=12, seed=4, scenario="rush-hour", tenants="free-tier-vs-premium"
        )
        env = QCloudSimEnv(config)
        records = env.run_until_complete()
        tenants = {r.tenant for r in records}
        assert tenants <= {"premium", "free"}
        assert len(tenants) == 2
        # Arrivals follow the scenario's diurnal model, not the tenants' own
        # traffic specs: both tenants share one arrival stream.
        arrivals = sorted(r.arrival_time for r in records)
        assert arrivals[0] > 0.0  # diurnal thinning never emits t=0 arrivals
