"""CLI coverage for the serve subsystem."""

import json

import pytest

from repro.cli import main

ALL_PRESETS = ("single", "free-tier-vs-premium", "batch-vs-interactive", "noisy-neighbor")


class TestServeList:
    def test_lists_presets(self, capsys):
        assert main(["serve", "--list"]) == 0
        out = capsys.readouterr().out
        for preset in ALL_PRESETS:
            assert preset in out


class TestServeRun:
    def test_default_single_mix(self, capsys):
        assert main(["serve", "-n", "6"]) == 0
        out = capsys.readouterr().out
        assert "tenant mix    : single" in out
        assert "jobs completed: 6" in out
        assert "default" in out

    def test_multi_tenant_run_with_report(self, tmp_path, capsys):
        report = str(tmp_path / "slo.json")
        records = str(tmp_path / "records.csv")
        assert main([
            "serve", "--tenants", "free-tier-vs-premium", "-n", "10",
            "--report", report, "--records", records,
        ]) == 0
        out = capsys.readouterr().out
        assert "premium" in out and "free" in out

        payload = json.loads(open(report).read())
        assert {r["tenant"] for r in payload} == {"premium", "free"}
        for row in payload:
            assert 0.0 <= row["attainment"] <= 1.0
        header = open(records).readline()
        assert "tenant" in header

    def test_serve_with_scenario(self, capsys):
        assert main(["serve", "--tenants", "noisy-neighbor", "-n", "8",
                     "--scenario", "rush-hour"]) == 0
        out = capsys.readouterr().out
        assert "victim" in out and "neighbor" in out

    def test_unknown_mix_fails(self):
        with pytest.raises(KeyError):
            main(["serve", "--tenants", "nope", "-n", "4"])

    def test_zero_completed_jobs_exits_nonzero(self, tmp_path, capsys):
        """A run where every job fails reports counts and exits 1 (no crash)."""
        from repro.serve import TenantMix, TenantSpec, register_tenant_mix
        import repro.serve.presets as presets

        register_tenant_mix(
            TenantMix(name="_toobig", tenants=(TenantSpec(name="t", qubit_range=(5000, 6000)),))
        )
        try:
            report = str(tmp_path / "slo.json")
            code = main(["serve", "--tenants", "_toobig", "-n", "3",
                         "--records", str(tmp_path / "r.csv"), "--report", report])
            assert code == 1
            out = capsys.readouterr().out
            assert "jobs completed: 0" in out
            assert "jobs failed   : 3" in out
            # A zero-completion run still exports a header-only records CSV.
            assert "wrote per-job records" in out
            header = (tmp_path / "r.csv").read_text().strip().splitlines()
            assert len(header) == 1 and header[0].startswith("job_id,")
            payload = json.loads(open(report).read())
            assert payload[0]["failed"] == 3
        finally:
            presets._REGISTRY.pop("_toobig", None)


class TestTenantsFlagElsewhere:
    def test_simulate_with_tenants(self, capsys):
        assert main(["simulate", "-n", "6", "--tenants", "single"]) == 0
        out = capsys.readouterr().out
        assert "jobs completed: 6" in out

    def test_compare_with_tenants(self, capsys):
        assert main(["compare", "-n", "8", "--tenants", "free-tier-vs-premium",
                     "--strategies", "speed", "fair"]) == 0
        out = capsys.readouterr().out
        assert "speed" in out and "fair" in out

    def test_sweep_over_tenant_mixes(self, capsys):
        assert main(["sweep", "--param", "tenants", "-n", "8",
                     "--values", "single", "free-tier-vs-premium"]) == 0
        out = capsys.readouterr().out
        assert "free-tier-vs-premium" in out
