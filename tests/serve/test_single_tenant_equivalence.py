"""The ``single`` tenant mix must be byte-identical to the plain broker.

This is the serve layer's no-regression guarantee: with one unlimited
tenant the dispatch keys are monotone in submission order, the floor is
never yielded, nothing is rejected and nothing is preempted — so every
completed job record (times, fidelities, device assignments, retries) and
every life-cycle event is *exactly* equal to a run without the serve layer,
across all four paper strategies.  The only difference is the tenant tag
the serve broker stamps on jobs and records.
"""

import numpy as np
import pytest

from repro.cloud.broker import Broker
from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.serve import ServeBroker

JOBS = 25
SEED = 2025


def _rl_policy():
    from repro.gymapi.spaces import Box
    from repro.rl.policies import ActorCriticPolicy
    from repro.scheduling.rl_policy import RLAllocationPolicy

    net = ActorCriticPolicy(
        Box(0.0, np.inf, shape=(16,), dtype=np.float64),
        Box(0.0, 1.0, shape=(5,), dtype=np.float64),
        seed=0,
    )
    return RLAllocationPolicy(net)


def _run(policy_name, tenants):
    policy = _rl_policy() if policy_name == "rlbase" else None
    config = SimulationConfig(
        num_jobs=JOBS,
        seed=SEED,
        policy=policy_name if policy_name != "rlbase" else "speed",
        tenants=tenants,
    )
    env = QCloudSimEnv(config, policy=policy)
    records = env.run_until_complete()
    return env, records


@pytest.mark.parametrize("policy_name", ["speed", "fidelity", "fair", "rlbase"])
def test_single_mix_byte_identical(policy_name):
    env_plain, plain = _run(policy_name, tenants=None)
    env_serve, serve = _run(policy_name, tenants="single")

    assert isinstance(env_plain.broker, Broker)
    assert not isinstance(env_plain.broker, ServeBroker)
    assert isinstance(env_serve.broker, ServeBroker)
    assert env_serve.broker.rejected_jobs == []
    assert env_serve.broker.preempted_total == 0

    assert len(serve) == JOBS
    # Every field except the tenant tag must be exactly equal — float times,
    # fidelities, device assignments and per-device breakdowns included.
    plain_dicts = [r.as_dict() for r in plain]
    serve_dicts = [r.as_dict() for r in serve]
    for d in plain_dicts:
        assert d.pop("tenant") == ""
    for d in serve_dicts:
        assert d.pop("tenant") == "default"
    assert serve_dicts == plain_dicts
    assert [r.breakdowns for r in serve] == [r.breakdowns for r in plain]
    # The event logs (arrival/start/finish/fidelity with exact times) match too.
    assert env_serve.records.events == env_plain.records.events


def test_single_mix_identical_clock():
    env_plain, _ = _run("speed", tenants=None)
    env_serve, _ = _run("speed", tenants="single")
    assert env_serve.now == env_plain.now


def test_single_mix_byte_identical_under_requeues():
    """Byte-identity must survive outage requeues: a requeued job re-enters
    the serve dispatch queue exactly where the plain FIFO would put it (a
    fresh request at the back), not at its original fair-share position."""

    def run(tenants):
        config = SimulationConfig(
            num_jobs=60, seed=SEED, policy="fidelity", scenario="flaky-fleet",
            tenants=tenants,
        )
        env = QCloudSimEnv(config)
        records = env.run_until_complete()
        return env, records

    env_plain, plain = run(None)
    env_serve, serve = run("single")
    assert sum(r.retries for r in plain) > 0, "scenario produced no requeues"

    plain_dicts = [r.as_dict() for r in plain]
    serve_dicts = [r.as_dict() for r in serve]
    for d in plain_dicts:
        d.pop("tenant")
    for d in serve_dicts:
        d.pop("tenant")
    assert serve_dicts == plain_dicts
    assert env_serve.records.events == env_plain.records.events
    assert env_serve.now == env_plain.now


def test_single_mix_report_covers_every_job():
    env, records = _run("speed", tenants="single")
    (report,) = env.tenant_reports()
    assert report.tenant == "default"
    assert report.submitted == JOBS
    assert report.completed == len(records)
    assert report.rejected == 0
    assert report.preemptions == 0
    assert report.attainment == 1.0  # an unbounded SLO is always met


def test_plain_run_has_no_tenant_reports():
    env, _ = _run("speed", tenants=None)
    with pytest.raises(RuntimeError):
        env.tenant_reports()
