"""SLO accounting math on hand-crafted records and events."""

import numpy as np
import pytest

from repro.cloud.records import JobEvent, JobRecord
from repro.serve import SLOSpec, TenantMix, TenantSpec, compute_tenant_reports, slo_satisfied


def record(job_id, tenant, arrival=0.0, start=10.0, finish=30.0, fidelity=0.8):
    return JobRecord(
        job_id=job_id,
        num_qubits=100,
        depth=5,
        num_shots=1000,
        arrival_time=arrival,
        start_time=start,
        finish_time=finish,
        fidelity=fidelity,
        communication_time=0.0,
        num_devices=1,
        tenant=tenant,
    )


class TestSLOSatisfied:
    def test_unbounded_always_met(self):
        assert slo_satisfied(record(0, "t"), SLOSpec())

    def test_queue_deadline(self):
        slo = SLOSpec(queue_deadline=5.0)
        assert not slo_satisfied(record(0, "t", start=10.0), slo)
        assert slo_satisfied(record(0, "t", start=5.0), slo)  # boundary: <=

    def test_completion_deadline(self):
        slo = SLOSpec(completion_deadline=25.0)
        assert not slo_satisfied(record(0, "t", finish=30.0), slo)
        assert slo_satisfied(record(0, "t", finish=25.0), slo)

    def test_fidelity_floor(self):
        slo = SLOSpec(fidelity_floor=0.9)
        assert not slo_satisfied(record(0, "t", fidelity=0.8), slo)
        assert slo_satisfied(record(0, "t", fidelity=0.9), slo)


class TestComputeTenantReports:
    def mix(self):
        return TenantMix(
            name="m",
            tenants=(
                TenantSpec(name="a", priority_class=0, slo=SLOSpec(queue_deadline=15.0)),
                TenantSpec(name="b", priority_class=2),
            ),
        )

    def test_counts_and_attainment(self):
        records = [
            record(0, "a", start=10.0),   # meets SLO
            record(1, "a", start=20.0),   # violates queue deadline
            record(2, "b"),
        ]
        events = [
            JobEvent(3, "rejected", 0.0, "a:rate_limit"),
            JobEvent(4, "failed", 5.0, "no feasible allocation"),
            JobEvent(2, "preempted", 3.0, None),
            JobEvent(2, "preempted", 6.0, None),
        ]
        tenant_of = {0: "a", 1: "a", 2: "b", 3: "a", 4: "b"}
        report_a, report_b = compute_tenant_reports(self.mix(), records, events, tenant_of)

        assert report_a.tenant == "a"
        assert report_a.submitted == 3
        assert report_a.completed == 2
        assert report_a.rejected == 1
        assert report_a.violated == 1
        # 1 of 3 submitted jobs completed within SLO.
        assert report_a.attainment == pytest.approx(1 / 3)

        assert report_b.submitted == 2
        assert report_b.completed == 1
        assert report_b.failed == 1
        assert report_b.preemptions == 2
        assert report_b.attainment == pytest.approx(1 / 2)

    def test_percentiles_match_numpy(self):
        waits = [1.0, 2.0, 3.0, 4.0, 10.0]
        records = [record(i, "a", start=w, finish=w + 5.0) for i, w in enumerate(waits)]
        tenant_of = {i: "a" for i in range(len(waits))}
        report_a, _ = compute_tenant_reports(self.mix(), records, [], tenant_of)
        assert report_a.queue_p50 == pytest.approx(np.percentile(waits, 50))
        assert report_a.queue_p95 == pytest.approx(np.percentile(waits, 95))
        assert report_a.queue_p99 == pytest.approx(np.percentile(waits, 99))
        turnarounds = [w + 5.0 for w in waits]
        assert report_a.completion_p99 == pytest.approx(np.percentile(turnarounds, 99))

    def test_empty_tenant_yields_none_percentiles(self):
        report_a, report_b = compute_tenant_reports(self.mix(), [], [], {})
        for r in (report_a, report_b):
            assert r.completed == 0
            assert r.queue_p50 is None
            assert r.mean_fidelity is None
            assert r.attainment is None  # idle tenant: no attainment to report

    def test_as_dict_is_json_safe(self):
        import json

        report_a, _ = compute_tenant_reports(self.mix(), [record(0, "a")], [], {0: "a"})
        payload = json.dumps(report_a.as_dict())
        assert "attainment" in payload


class TestStreamingReports:
    """Reports built from a StreamingRecordsManager's P² sketches."""

    def mix(self):
        return TenantMix(
            name="m",
            tenants=(TenantSpec(name="a"), TenantSpec(name="b")),
        )

    def _manager(self, waits_a):
        from repro.cloud.records_stream import StreamingRecordsManager

        manager = StreamingRecordsManager()
        for i, wait in enumerate(waits_a):
            manager.add_record(record(i, "a", start=wait, finish=wait + 20.0))
        return manager

    def test_percentiles_come_from_sketches(self):
        from repro.serve import compute_tenant_reports_streaming

        waits = [float(w) for w in range(1, 41)]
        manager = self._manager(waits)
        tenant_of = {i: "a" for i in range(len(waits))}
        tenant_of[99] = "b"  # submitted but never completed
        report_a, report_b = compute_tenant_reports_streaming(
            self.mix(), manager, tenant_of,
            rejected={"b": 1}, failed={}, preemptions={"a": 2},
        )
        assert report_a.completed == len(waits)
        assert report_a.submitted == len(waits)
        assert report_a.preemptions == 2
        expected = manager.latency_percentiles("a")
        assert report_a.queue_p95 == expected["wait_p95"]
        assert report_a.completion_p50 == expected["turnaround_p50"]
        # Streaming discards the per-job data SLO evaluation needs.
        assert report_a.violated == 0
        assert report_a.attainment is None

        assert report_b.submitted == 1
        assert report_b.completed == 0
        assert report_b.rejected == 1
        assert report_b.queue_p50 is None

    def test_serve_broker_routes_streaming_manager(self):
        from repro.cloud.config import SimulationConfig
        from repro.cloud.environment import QCloudSimEnv
        from repro.cloud.records_stream import StreamingRecordsManager

        config = SimulationConfig(num_jobs=40, seed=7, tenants="noisy-neighbor")
        with StreamingRecordsManager() as manager:
            env = QCloudSimEnv(config, records=manager)
            env.run_until_complete()
            streaming = {r.tenant: r for r in env.broker.tenant_reports()}
        # An identical exact run agrees on every count.
        env_exact = QCloudSimEnv(SimulationConfig(num_jobs=40, seed=7,
                                                  tenants="noisy-neighbor"))
        env_exact.run_until_complete()
        for exact in env_exact.broker.tenant_reports():
            report = streaming[exact.tenant]
            assert report.submitted == exact.submitted
            assert report.completed == exact.completed
            assert report.rejected == exact.rejected
            assert report.failed == exact.failed
            assert report.preemptions == exact.preemptions
            if exact.completed:
                assert report.queue_p95 is not None
