"""The starvation guard: outage kills + preemptions share one retry budget.

PR 3's outage machinery requeues killed jobs; the serve layer adds
preemption requeues on top.  Both count against the configurable
``SimulationConfig.max_requeues`` so a job bounced between outages and
higher-priority classes terminally fails (with a ``failed`` record event)
instead of looping forever.
"""

import pytest

from repro.circuits.circuit import CircuitSpec
from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.cloud.qjob import QJob, QJobStatus
from repro.dynamics import MaintenanceWindow, Scenario
from repro.hardware.backends import get_device_profile
from repro.serve import SLOSpec, TenantMix, TenantSpec

def fleet():
    # A single-device fleet: the batch job has exactly one sub-job, so a
    # killing window aborts (and requeues) it immediately instead of waiting
    # for surviving sibling sub-jobs to drain.
    return [get_device_profile("ibm_brussels")]


def make_job(job_id, tenant, q, arrival, shots):
    circuit = CircuitSpec(
        num_qubits=q, depth=8, num_shots=shots,
        num_two_qubit_gates=12, num_single_qubit_gates=30, name=f"job_{job_id}",
    )
    return QJob(job_id=job_id, circuit=circuit, arrival_time=arrival, tenant=tenant)


def preemption_mix():
    return TenantMix(
        name="starve",
        tenants=(
            TenantSpec(name="premium", priority_class=0, slo=SLOSpec(queue_deadline=30.0)),
            TenantSpec(name="batch", priority_class=2),
        ),
    )


def outage_scenario():
    # A deterministic killing window: aborts the running batch job at t=50,
    # device back online at t=150.
    return Scenario(
        name="maint-kill",
        maintenance=(
            MaintenanceWindow(start=50.0, duration=100.0, device="ibm_brussels",
                              kill_running=True),
        ),
    )


class TestPreemptionOutageInteraction:
    def run(self, max_requeues):
        # Timeline: batch starts at 0, is killed at 50 (requeue #1), restarts
        # at 150 when the device recovers, and is preempted at 230 (premium
        # arrival 200 + 30 s queueing deadline → requeue #2).
        jobs = [
            # ~529 s of processing: still running when the premium deadline
            # expires at t=230.
            make_job(0, "batch", q=127, arrival=0.0, shots=1_000_000),
            make_job(1, "premium", q=127, arrival=200.0, shots=20_000),
        ]
        config = SimulationConfig(num_jobs=2, max_requeues=max_requeues)
        env = QCloudSimEnv(
            config=config,
            devices=fleet(),
            jobs=jobs,
            tenants=preemption_mix(),
            scenario=outage_scenario(),
        )
        records = env.run_until_complete()
        return env, records

    def test_shared_budget_exhausted_fails_job(self):
        """Outage requeue (1) + preemption requeue (2) > max_requeues=1."""
        env, records = self.run(max_requeues=1)

        batch = next(j for j in env.job_generator.jobs if j.job_id == 0)
        assert batch.status is QJobStatus.FAILED
        assert batch in env.broker.failed_jobs
        assert env.records.record_for(0) is None

        events = env.records.events_for(0)
        kinds = [e.event for e in events]
        # Killed by the maintenance window, restarted, preempted, then failed.
        assert kinds.count("requeue") == 1
        assert kinds.count("preempted") == 1
        assert kinds[-1] == "failed"
        (failed,) = [e for e in events if e.event == "failed"]
        assert "requeue limit (1)" in failed.detail
        assert failed.time == pytest.approx(230.0)  # premium arrival + deadline

        # The premium job is unaffected by the batch job's demise.
        premium = env.records.record_for(1)
        assert premium is not None
        assert premium.wait_time == pytest.approx(30.0)

        # Accounting surfaces the failure on the right tenant.
        reports = {r.tenant: r for r in env.tenant_reports()}
        assert reports["batch"].failed == 1
        assert reports["batch"].preemptions == 1
        assert reports["batch"].attainment == 0.0
        assert reports["premium"].attainment == 1.0

    def test_sufficient_budget_lets_job_finish(self):
        """With budget for both bounces, the batch job eventually completes."""
        env, records = self.run(max_requeues=2)
        batch = env.records.record_for(0)
        assert batch is not None
        assert batch.retries == 2  # one outage kill + one preemption
        assert batch.tenant == "batch"
        premium = env.records.record_for(1)
        assert batch.start_time >= premium.finish_time
        assert len(env.broker.failed_jobs) == 0


class TestConfigKnob:
    def test_max_requeues_reaches_plain_broker(self):
        env = QCloudSimEnv(SimulationConfig(num_jobs=1, max_requeues=7))
        assert env.broker.max_requeues == 7

    def test_invalid_max_requeues_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(max_requeues=-1)
