"""Tenant/SLO/admission spec validation and the mix registry."""

import pytest

from repro.dynamics.scenario import TrafficSpec
from repro.serve import (
    AdmissionSpec,
    SLOSpec,
    TenantMix,
    TenantSpec,
    available_tenant_mixes,
    get_tenant_mix,
    register_tenant_mix,
    resolve_tenant_mix,
)

ALL_PRESETS = ("single", "free-tier-vs-premium", "batch-vs-interactive", "noisy-neighbor")


class TestSLOSpec:
    def test_defaults_are_unbounded(self):
        assert SLOSpec().is_unbounded

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SLOSpec(queue_deadline=0.0)
        with pytest.raises(ValueError):
            SLOSpec(completion_deadline=-5.0)
        with pytest.raises(ValueError):
            SLOSpec(fidelity_floor=1.5)
        with pytest.raises(ValueError):
            SLOSpec(fidelity_floor=0.0)

    def test_bounded(self):
        assert not SLOSpec(queue_deadline=10.0).is_unbounded


class TestAdmissionSpec:
    def test_default_is_unlimited(self):
        assert AdmissionSpec().is_unlimited

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            AdmissionSpec(rate=0.0)
        with pytest.raises(ValueError):
            AdmissionSpec(rate=1.0, burst=0.5)
        with pytest.raises(ValueError):
            AdmissionSpec(max_queued=0)

    def test_limited(self):
        assert not AdmissionSpec(rate=0.1).is_unlimited
        assert not AdmissionSpec(max_queued=5).is_unlimited


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(name="")
        with pytest.raises(ValueError):
            TenantSpec(name="t", weight=0.0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", share=-1.0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", qubit_range=(10, 5))

    def test_shapes_workload(self):
        assert not TenantSpec(name="t").shapes_workload
        assert TenantSpec(name="t", traffic=TrafficSpec()).shapes_workload
        assert TenantSpec(name="t", qubit_range=(100, 150)).shapes_workload

    def test_is_frozen_and_picklable(self):
        import pickle

        spec = TenantSpec(name="t", slo=SLOSpec(queue_deadline=10.0))
        with pytest.raises(Exception):
            spec.weight = 2.0  # type: ignore[misc]
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestTenantMix:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantMix(name="", tenants=(TenantSpec(name="a"),))
        with pytest.raises(ValueError):
            TenantMix(name="m", tenants=())
        with pytest.raises(ValueError):
            TenantMix(name="m", tenants=(TenantSpec(name="a"), TenantSpec(name="a")))

    def test_lookup_and_default(self):
        mix = TenantMix(name="m", tenants=(TenantSpec(name="a"), TenantSpec(name="b")))
        assert mix.tenant("b").name == "b"
        assert mix.default_tenant.name == "a"
        assert mix.tenant_names() == ("a", "b")
        with pytest.raises(KeyError):
            mix.tenant("c")

    def test_passthrough_and_multiclass(self):
        single = TenantMix(name="m", tenants=(TenantSpec(name="a"),))
        assert single.is_passthrough
        assert not single.is_multiclass

        shaped = TenantMix(
            name="m2", tenants=(TenantSpec(name="a", traffic=TrafficSpec()),)
        )
        assert not shaped.is_passthrough

        classes = TenantMix(
            name="m3",
            tenants=(
                TenantSpec(name="a", priority_class=0),
                TenantSpec(name="b", priority_class=2),
            ),
        )
        assert classes.is_multiclass
        assert classes.priority_classes == (0, 2)


class TestRegistry:
    def test_presets_registered(self):
        names = available_tenant_mixes()
        for preset in ALL_PRESETS:
            assert preset in names

    def test_single_preset_is_passthrough(self):
        assert get_tenant_mix("single").is_passthrough

    def test_multiclass_presets(self):
        assert get_tenant_mix("free-tier-vs-premium").is_multiclass
        assert get_tenant_mix("batch-vs-interactive").is_multiclass
        # noisy-neighbor is a single-class mix: isolation comes from
        # admission control, not priorities.
        assert not get_tenant_mix("noisy-neighbor").is_multiclass

    def test_unknown_mix_raises(self):
        with pytest.raises(KeyError):
            get_tenant_mix("nope")

    def test_resolve_accepts_instances_and_names(self):
        mix = TenantMix(name="custom", tenants=(TenantSpec(name="a"),))
        assert resolve_tenant_mix(mix) is mix
        assert resolve_tenant_mix("single").name == "single"

    def test_register_custom(self):
        mix = TenantMix(name="_test_mix", tenants=(TenantSpec(name="a"),))
        register_tenant_mix(mix)
        try:
            assert get_tenant_mix("_test_mix") is mix
        finally:
            import repro.serve.presets as presets

            presets._REGISTRY.pop("_test_mix", None)
