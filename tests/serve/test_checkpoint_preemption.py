"""Checkpointing × serve-layer preemption (and its interaction with outages).

The deterministic timeline mirrors ``test_starvation_guard``: a batch job is
killed by a maintenance window, resumes, is preempted mid-resume by a
premium tenant's queueing deadline, and resumes again — under checkpointing
each bounce saves completed shots, so the job only ever pays for the shots
it still owes.
"""

import pytest

from repro.circuits.circuit import CircuitSpec
from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.cloud.qjob import QJob
from repro.dynamics import MaintenanceWindow, Scenario
from repro.hardware.backends import get_device_profile
from repro.serve import SLOSpec, TenantMix, TenantSpec

BATCH_SHOTS = 1_000_000
KILL_AT = 50.0
BACK_AT = 150.0
PREEMPT_AT = 230.0  # premium arrival (200) + queueing deadline (30)


def fleet():
    return [get_device_profile("ibm_brussels")]


def make_job(job_id, tenant, q, arrival, shots):
    circuit = CircuitSpec(
        num_qubits=q, depth=8, num_shots=shots,
        num_two_qubit_gates=12, num_single_qubit_gates=30, name=f"job_{job_id}",
    )
    return QJob(job_id=job_id, circuit=circuit, arrival_time=arrival, tenant=tenant)


def preemption_mix():
    return TenantMix(
        name="starve",
        tenants=(
            TenantSpec(name="premium", priority_class=0, slo=SLOSpec(queue_deadline=30.0)),
            TenantSpec(name="batch", priority_class=2),
        ),
    )


def outage_scenario():
    return Scenario(
        name="maint-kill",
        maintenance=(
            MaintenanceWindow(start=KILL_AT, duration=100.0, device="ibm_brussels",
                              kill_running=True),
        ),
    )


def run(checkpointing, max_requeues=2):
    jobs = [
        make_job(0, "batch", q=127, arrival=0.0, shots=BATCH_SHOTS),
        make_job(1, "premium", q=127, arrival=200.0, shots=20_000),
    ]
    config = SimulationConfig(
        num_jobs=2, max_requeues=max_requeues, checkpointing=checkpointing,
    )
    env = QCloudSimEnv(
        config=config,
        devices=fleet(),
        jobs=jobs,
        tenants=preemption_mix(),
        scenario=outage_scenario(),
    )
    records = env.run_until_complete()
    return env, records


class TestPreemptionMidResume:
    def test_outage_then_preemption_both_checkpoint(self):
        env, records = run(checkpointing=True)
        batch = env.records.record_for(0)
        premium = env.records.record_for(1)
        assert batch is not None and premium is not None
        assert batch.retries == 2  # one maintenance kill + one preemption

        events = env.records.events_for(0)
        checkpoints = [e for e in events if e.event == "checkpoint"]
        resumes = [e for e in events if e.event == "resume"]
        assert [e.time for e in checkpoints] == [
            pytest.approx(KILL_AT), pytest.approx(PREEMPT_AT)
        ]
        assert len(resumes) == 2
        assert resumes[0].time == pytest.approx(BACK_AT)
        # The second resume waits for the premium job to clear the device.
        assert resumes[1].time == pytest.approx(premium.finish_time)

        # Cumulative checkpoints: the mid-resume preemption adds the shots
        # completed between 150 and 230 on top of the first checkpoint.
        counts = [int(e.detail.split("/")[0]) for e in checkpoints]
        assert 0 < counts[0] < counts[1] < BATCH_SHOTS
        assert batch.resumed_shots == counts[1]
        assert len(batch.breakdowns) == 3  # one segment per attempt

        # Timing attribution: executing 0..50, 150..230 and the final
        # attempt; waiting only 50..150 and preemption..premium-finish.
        assert batch.first_start_time == pytest.approx(0.0)
        expected_wait = (BACK_AT - KILL_AT) + (premium.finish_time - PREEMPT_AT)
        assert batch.wait_time == pytest.approx(expected_wait)
        assert batch.wait_time + batch.service_time == pytest.approx(
            batch.turnaround_time
        )

    def test_checkpointing_cuts_preemption_cost(self):
        env_off, _ = run(checkpointing=False)
        env_on, _ = run(checkpointing=True)
        off = env_off.records.record_for(0)
        on = env_on.records.record_for(0)
        # The preempted job finishes earlier because each resume only
        # re-executes the shots its aborted attempts did not complete.
        assert on.finish_time < off.finish_time
        assert on.resumed_shots > 0 and off.resumed_shots == 0
        # The premium (preempting) tenant is indifferent either way.
        assert env_on.records.record_for(1).finish_time == pytest.approx(
            env_off.records.record_for(1).finish_time
        )

    def test_preemption_counts_in_tenant_reports(self):
        env, _ = run(checkpointing=True)
        reports = {r.tenant: r for r in env.tenant_reports()}
        assert reports["batch"].preemptions == 1
        assert reports["batch"].completed == 1
        assert reports["premium"].attainment == 1.0


class TestExhaustionWithPartialProgress:
    def test_budget_exhausted_fails_despite_checkpoints(self):
        env, _ = run(checkpointing=True, max_requeues=1)
        assert env.records.record_for(0) is None
        assert len(env.broker.failed_jobs) == 1
        events = env.records.events_for(0)
        kinds = [e.event for e in events]
        assert kinds.count("checkpoint") >= 1  # progress was being saved
        assert kinds[-1] == "failed"
        (failed,) = [e for e in events if e.event == "failed"]
        assert failed.time == pytest.approx(PREEMPT_AT)
        reports = {r.tenant: r for r in env.tenant_reports()}
        assert reports["batch"].failed == 1


class TestSingleMixCheckpointEquivalence:
    @pytest.mark.parametrize("policy", ["speed", "fidelity"])
    def test_serve_single_matches_plain_broker_with_checkpointing(self, policy):
        """PR 4's byte-identity harness, extended to the checkpointed path:
        under flaky-fleet with checkpointing on, the serve broker's single
        mix still reproduces the plain broker exactly."""

        def _run(tenants):
            config = SimulationConfig(
                num_jobs=40, seed=2025, policy=policy, scenario="flaky-fleet",
                tenants=tenants, checkpointing=True,
            )
            env = QCloudSimEnv(config)
            records = env.run_until_complete()
            return env, records

        env_plain, plain = _run(None)
        env_serve, serve = _run("single")
        assert sum(r.retries for r in plain) > 0, "scenario produced no requeues"

        plain_dicts = [r.as_dict() for r in plain]
        serve_dicts = [r.as_dict() for r in serve]
        for d in plain_dicts:
            d.pop("tenant")
        for d in serve_dicts:
            d.pop("tenant")
        assert serve_dicts == plain_dicts
        assert env_serve.records.events == env_plain.records.events
        assert env_serve.now == env_plain.now
