"""Unit tests for the fidelity-distribution utilities (Fig. 6)."""

import numpy as np
import pytest

from repro.analysis.histogram import ascii_histogram, distribution_stats, fidelity_distributions


class TestFidelityDistributions:
    def test_common_binning(self, rng):
        data = {
            "speed": rng.normal(0.65, 0.01, 200).tolist(),
            "fidelity": rng.normal(0.69, 0.02, 200).tolist(),
        }
        result = fidelity_distributions(data, bins=20)
        assert set(result) == {"speed", "fidelity"}
        edges_a = result["speed"]["edges"]
        edges_b = result["fidelity"]["edges"]
        assert np.allclose(edges_a, edges_b)
        assert result["speed"]["counts"].sum() == 200
        assert np.isclose(result["speed"]["density"].sum(), 1.0)

    def test_right_shifted_distribution_detected(self, rng):
        data = {
            "speed": rng.normal(0.65, 0.01, 500),
            "fidelity": rng.normal(0.69, 0.01, 500),
        }
        result = fidelity_distributions(data, bins=30)
        mean_bin = lambda r: np.average(r["centers"], weights=np.maximum(r["counts"], 1e-9))
        assert mean_bin(result["fidelity"]) > mean_bin(result["speed"])

    def test_validation(self):
        with pytest.raises(ValueError):
            fidelity_distributions({}, bins=10)
        with pytest.raises(ValueError):
            fidelity_distributions({"a": [0.5]}, bins=0)

    def test_degenerate_single_value(self):
        result = fidelity_distributions({"a": [0.5, 0.5, 0.5]}, bins=5)
        assert result["a"]["counts"].sum() == 3


class TestDistributionStats:
    def test_stats(self, rng):
        values = rng.normal(0.65, 0.02, 1000)
        stats = distribution_stats(values)
        assert stats["mean"] == pytest.approx(0.65, abs=0.01)
        assert stats["std"] == pytest.approx(0.02, abs=0.005)
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["iqr_width"] > 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            distribution_stats([])

    def test_broader_distribution_has_larger_iqr(self, rng):
        narrow = distribution_stats(rng.normal(0.65, 0.01, 1000))
        broad = distribution_stats(rng.uniform(0.60, 0.64, 1000))
        assert broad["iqr_width"] > narrow["iqr_width"]


class TestAsciiHistogram:
    def test_render(self, rng):
        text = ascii_histogram(rng.normal(0.65, 0.02, 300), bins=10, title="speed")
        lines = text.splitlines()
        assert lines[0] == "speed"
        assert len(lines) == 11
        assert "#" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_histogram([])
