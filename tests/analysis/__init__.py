"""Test package."""
