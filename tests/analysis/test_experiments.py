"""Tests for the case-study and ablation runners (scaled-down workloads)."""

import pytest

from repro.analysis.experiments import (
    run_case_study,
    run_policy_simulation,
    sweep_communication_penalty,
    sweep_error_score_weights,
)
from repro.cloud.config import SimulationConfig


@pytest.fixture(scope="module")
def small_config():
    return SimulationConfig(num_jobs=30, seed=13)


@pytest.fixture(scope="module")
def heuristic_case_study(small_config):
    """Case study over the three heuristic strategies (no RL model needed)."""
    return run_case_study(small_config, strategies=("speed", "fidelity", "fair"))


class TestRunPolicySimulation:
    def test_single_policy_run(self, small_config):
        summary, records = run_policy_simulation(small_config.with_policy("speed"))
        assert summary.num_jobs == 30
        assert len(records) == 30
        assert summary.strategy == "speed"

    def test_same_workload_for_custom_jobs(self, small_config):
        from repro.cloud.job_generator import generate_synthetic_jobs

        jobs = generate_synthetic_jobs(10, seed=99)
        summary, records = run_policy_simulation(small_config, jobs=jobs)
        assert summary.num_jobs == 10
        assert sorted(r.job_id for r in records) == list(range(10))


class TestCaseStudy:
    def test_all_requested_strategies_present(self, heuristic_case_study):
        assert set(heuristic_case_study.summaries) == {"speed", "fidelity", "fair"}
        assert set(heuristic_case_study.records) == {"speed", "fidelity", "fair"}

    def test_rlbase_skipped_without_model(self, small_config):
        result = run_case_study(small_config, strategies=("speed", "rlbase"))
        assert "speed" in result.summaries
        assert "rlbase" not in result.summaries

    def test_same_workload_across_strategies(self, heuristic_case_study):
        ids_per_strategy = [
            sorted(r.job_id for r in records) for records in heuristic_case_study.records.values()
        ]
        assert all(ids == ids_per_strategy[0] for ids in ids_per_strategy)
        qubits = {
            strategy: sorted(r.num_qubits for r in records)
            for strategy, records in heuristic_case_study.records.items()
        }
        assert qubits["speed"] == qubits["fidelity"] == qubits["fair"]

    def test_paper_shape_fidelity_ordering(self, heuristic_case_study):
        """Table 2 shape: the error-aware strategy achieves the best fidelity."""
        summaries = heuristic_case_study.summaries
        assert summaries["fidelity"].mean_fidelity > summaries["speed"].mean_fidelity
        assert summaries["fidelity"].mean_fidelity > summaries["fair"].mean_fidelity

    def test_paper_shape_runtime_and_comm(self, heuristic_case_study):
        """Table 2 shape: error-aware is slower but communicates less."""
        summaries = heuristic_case_study.summaries
        assert (
            summaries["fidelity"].total_simulation_time
            > summaries["speed"].total_simulation_time
        )
        assert (
            summaries["fidelity"].total_communication_time
            < summaries["speed"].total_communication_time
        )

    def test_summary_rows_and_fidelities(self, heuristic_case_study):
        rows = heuristic_case_study.summary_rows()
        assert len(rows) == 3
        fids = heuristic_case_study.fidelities("speed")
        assert len(fids) == 30
        assert all(0 < f < 1 for f in fids)


class TestAblations:
    def test_phi_sweep_monotone(self):
        cfg = SimulationConfig(num_jobs=12, seed=3)
        results = sweep_communication_penalty([0.90, 0.95, 1.0], config=cfg, strategy="speed")
        fidelities = [results[phi].mean_fidelity for phi in (0.90, 0.95, 1.0)]
        assert fidelities == sorted(fidelities)
        # Runtime is unaffected by the fidelity penalty.
        times = {round(results[phi].total_simulation_time, 6) for phi in (0.90, 0.95, 1.0)}
        assert len(times) == 1

    def test_error_weight_sweep_runs(self):
        cfg = SimulationConfig(num_jobs=10, seed=4)
        results = sweep_error_score_weights(
            [(0.5, 0.3, 0.2), (1.0, 0.0, 0.0)], config=cfg
        )
        assert len(results) == 2
        for summary in results.values():
            assert summary.num_jobs == 10
