"""Unit tests for training-curve summarisation (Fig. 5)."""

import pytest

from repro.analysis.training_curve import (
    downsample_curve,
    run_training_replicates,
    summarize_training_curve,
)


def synthetic_curve(n=50):
    """A curve with the paper's qualitative shape: reward up, entropy loss up."""
    curve = []
    for i in range(n):
        progress = i / (n - 1)
        curve.append(
            {
                "timesteps": 2048.0 * (i + 1),
                "ep_rew_mean": 0.55 + 0.15 * progress,
                "entropy_loss": -7.0 + 5.0 * progress,
            }
        )
    return curve


class TestSummarize:
    def test_shape_metrics(self):
        stats = summarize_training_curve(synthetic_curve())
        assert stats["num_updates"] == 50
        assert stats["total_timesteps"] == 2048.0 * 50
        assert stats["reward_gain"] > 0.1
        assert stats["final_reward"] > stats["initial_reward"]
        assert stats["entropy_loss_change"] > 0
        assert stats["initial_entropy_loss"] == pytest.approx(-6.7, abs=0.5)

    def test_single_point_curve(self):
        stats = summarize_training_curve(synthetic_curve(2)[:1])
        assert stats["num_updates"] == 1
        assert stats["reward_gain"] == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_training_curve([])


class TestDownsample:
    def test_no_change_when_short(self):
        curve = synthetic_curve(10)
        assert downsample_curve(curve, max_points=50) == curve

    def test_thinning_preserves_endpoints(self):
        curve = synthetic_curve(200)
        thin = downsample_curve(curve, max_points=20)
        assert len(thin) == 20
        assert thin[0] == curve[0]
        assert thin[-1] == curve[-1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            downsample_curve(synthetic_curve(5), max_points=0)


class TestTrainingReplicates:
    def test_explicit_seeds_deterministic(self):
        curves = run_training_replicates(seeds=[1, 2], total_timesteps=256, n_steps=128)
        assert set(curves) == {1, 2}
        assert all(len(curve) >= 1 for curve in curves.values())
        again = run_training_replicates(seeds=[1], total_timesteps=256, n_steps=128)
        assert again[1] == curves[1]

    def test_derived_seeds_stable(self):
        a = run_training_replicates(
            replicates=2, base_seed=0, total_timesteps=256, n_steps=128
        )
        b = run_training_replicates(
            replicates=2, base_seed=0, total_timesteps=256, n_steps=128
        )
        assert list(a) == list(b)
        assert len(set(a)) == 2

    def test_invalid_replicates(self):
        with pytest.raises(ValueError):
            run_training_replicates(replicates=0, total_timesteps=256)
