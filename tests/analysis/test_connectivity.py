"""Tests for the connectivity audit (replay of completed schedules)."""

import pytest

from repro.analysis.connectivity import audit_connectivity
from repro.analysis.experiments import run_policy_simulation
from repro.cloud.config import SimulationConfig
from repro.cloud.records import JobRecord
from repro.hardware.backends import build_default_fleet


def make_record(job_id, start, finish, devices, allocation, q=None):
    return JobRecord(
        job_id=job_id,
        num_qubits=q if q is not None else sum(allocation),
        depth=10,
        num_shots=10_000,
        arrival_time=0.0,
        start_time=start,
        finish_time=finish,
        fidelity=0.7,
        communication_time=1.0,
        num_devices=len(devices),
        devices=list(devices),
        allocation=list(allocation),
    )


class TestAuditMechanics:
    def test_sequential_jobs_always_connected(self, default_fleet):
        records = [
            make_record(0, 0.0, 10.0, ["ibm_kyiv", "ibm_quebec"], [127, 63]),
            make_record(1, 10.0, 20.0, ["ibm_kyiv", "ibm_quebec"], [127, 63]),
        ]
        audit = audit_connectivity(records, default_fleet)
        assert audit.total_placements == 4
        assert audit.connected_fraction == 1.0
        assert set(audit.per_device) == {d.name for d in default_fleet}

    def test_release_frees_capacity_for_next_job(self, default_fleet):
        # Jobs back to back on the same devices at the exact same timestamp:
        # the release of job 0 must be processed before the allocation of job 1.
        records = [
            make_record(0, 0.0, 10.0, ["ibm_kyiv"], [120]),
            make_record(1, 10.0, 20.0, ["ibm_kyiv"], [120]),
        ]
        audit = audit_connectivity(records, default_fleet)
        assert audit.total_placements == 2

    def test_empty_records(self, default_fleet):
        audit = audit_connectivity([], default_fleet)
        assert audit.total_placements == 0
        assert audit.connected_fraction == 1.0


class TestAuditOnSimulations:
    @pytest.mark.parametrize("policy", ["speed", "fidelity", "even_split"])
    def test_audit_full_simulation(self, policy, default_fleet):
        cfg = SimulationConfig(num_jobs=20, seed=11, policy=policy)
        _summary, records = run_policy_simulation(cfg)
        audit = audit_connectivity(records, default_fleet)
        assert audit.total_placements == sum(r.num_devices for r in records)
        assert 0.0 <= audit.connected_fraction <= 1.0
        # On heavy-hex devices with greedy BFS placement the assumption holds
        # for the overwhelming majority of placements.
        assert audit.connected_fraction > 0.5
