"""Unit tests for table rendering."""

import pytest

from repro.analysis.reporting import format_markdown_table, format_table2
from repro.metrics.aggregate import StrategySummary


def summary(name, tsim, fid, comm):
    return StrategySummary(
        strategy=name,
        num_jobs=100,
        total_simulation_time=tsim,
        mean_fidelity=fid,
        std_fidelity=0.01,
        total_communication_time=comm,
        mean_devices_per_job=2.5,
        mean_turnaround_time=100.0,
        mean_wait_time=10.0,
    )


class TestTable2:
    def test_contains_all_modes_and_numbers(self):
        table = format_table2(
            {
                "speed": summary("speed", 108775.38, 0.65332, 5707.80),
                "fidelity": summary("fidelity", 209873.02, 0.68781, 3822.74),
            }
        )
        assert "speed" in table and "fidelity" in table
        assert "108775.38" in table
        assert "0.65332" in table
        assert "3822.74" in table

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            format_table2({})


class TestMarkdown:
    def test_renders_rows(self):
        rows = [
            {"strategy": "speed", "T_sim_s": 1.0, "mean_fidelity": 0.65},
            {"strategy": "fair", "T_sim_s": 2.0, "mean_fidelity": 0.64},
        ]
        text = format_markdown_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("| strategy")
        assert len(lines) == 4
        assert "| speed |" in lines[2]

    def test_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_markdown_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            format_markdown_table([])


class TestTenantTable:
    def _report(self, tenant, submitted, attainment):
        from repro.serve.accounting import TenantSLOReport

        return TenantSLOReport(
            tenant=tenant, priority_class=0, weight=1.0,
            submitted=submitted, completed=submitted, rejected=0, failed=0,
            preemptions=0, violated=0, attainment=attainment,
        )

    def test_idle_tenant_renders_dash_not_full_attainment(self):
        from repro.analysis.reporting import format_tenant_table

        table = format_tenant_table([
            self._report("busy", submitted=4, attainment=0.75),
            self._report("idle", submitted=0, attainment=None),
        ])
        busy_row = next(l for l in table.splitlines() if l.startswith("busy"))
        idle_row = next(l for l in table.splitlines() if l.startswith("idle"))
        assert "75.0%" in busy_row
        assert "%" not in idle_row
        assert " - " in idle_row
