"""Unit and property-based tests for qubit partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.partition import (
    allocation_from_weights,
    allocation_from_weights_batch,
    partition_even,
    partition_greedy_fill,
    partition_proportional,
    validate_allocation,
)


class TestValidateAllocation:
    def test_accepts_valid(self):
        validate_allocation([3, 2], total=5, capacities=[4, 4])

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError):
            validate_allocation([3, 3], total=5, capacities=[4, 4])

    def test_rejects_capacity_violation(self):
        with pytest.raises(ValueError):
            validate_allocation([5, 0], total=5, capacities=[4, 4])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_allocation([6, -1], total=5, capacities=[10, 10])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            validate_allocation([5], total=5, capacities=[4, 4])


class TestGreedyFill:
    def test_fills_in_order(self):
        assert partition_greedy_fill(190, [127, 127, 127]) == [127, 63, 0]

    def test_exact_fit(self):
        assert partition_greedy_fill(254, [127, 127]) == [127, 127]

    def test_insufficient_capacity(self):
        with pytest.raises(ValueError):
            partition_greedy_fill(300, [127, 127])

    def test_skips_full_devices(self):
        assert partition_greedy_fill(50, [0, 30, 40]) == [0, 30, 20]


class TestEven:
    def test_even_split(self):
        assert partition_even(90, [127, 127, 127]) == [30, 30, 30]

    def test_uneven_remainder(self):
        allocation = partition_even(91, [127, 127, 127])
        assert sum(allocation) == 91
        assert max(allocation) - min(allocation) <= 1

    def test_respects_small_capacities(self):
        allocation = partition_even(100, [10, 200, 200])
        assert sum(allocation) == 100
        assert allocation[0] <= 10

    def test_insufficient(self):
        with pytest.raises(ValueError):
            partition_even(100, [10, 10])


class TestProportional:
    def test_proportional_to_weights(self):
        allocation = partition_proportional(100, [3.0, 1.0], [127, 127])
        assert allocation == [75, 25]

    def test_zero_weights_fall_back_to_even(self):
        allocation = partition_proportional(100, [0.0, 0.0], [127, 127])
        assert sum(allocation) == 100

    def test_capacity_respected_even_with_extreme_weights(self):
        allocation = partition_proportional(200, [1000.0, 1e-9], [127, 127])
        assert allocation[0] == 127
        assert sum(allocation) == 200

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            partition_proportional(10, [-1.0, 2.0], [20, 20])


class TestAllocationFromWeights:
    def test_clips_negative_weights(self):
        allocation = allocation_from_weights([-5.0, 1.0, 1.0], 100, [127, 127, 127])
        assert sum(allocation) == 100
        assert allocation[0] <= allocation[1]

    def test_all_negative_weights_still_valid(self):
        allocation = allocation_from_weights([-1.0, -2.0], 50, [127, 127])
        assert sum(allocation) == 50


# ---------------------------------------------------------------------------
# Property-based tests: every partitioning function must satisfy the §4
# constraints (sum equals demand, no entry negative, capacities respected)
# for arbitrary feasible inputs.
# ---------------------------------------------------------------------------
feasible_problem = st.integers(min_value=1, max_value=8).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(min_value=0, max_value=200), min_size=n, max_size=n),
        st.integers(min_value=1, max_value=200 * n),
    )
)


@settings(max_examples=150, deadline=None)
@given(feasible_problem)
def test_greedy_fill_properties(problem):
    capacities, total = problem
    if sum(capacities) < total:
        with pytest.raises(ValueError):
            partition_greedy_fill(total, capacities)
        return
    allocation = partition_greedy_fill(total, capacities)
    validate_allocation(allocation, total, capacities)


@settings(max_examples=150, deadline=None)
@given(feasible_problem)
def test_even_partition_properties(problem):
    capacities, total = problem
    if sum(capacities) < total:
        return
    allocation = partition_even(total, capacities)
    validate_allocation(allocation, total, capacities)


@settings(max_examples=150, deadline=None)
@given(
    feasible_problem,
    st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=8, max_size=8),
)
def test_proportional_partition_properties(problem, raw_weights):
    capacities, total = problem
    if sum(capacities) < total:
        return
    weights = raw_weights[: len(capacities)]
    allocation = partition_proportional(total, weights, capacities)
    validate_allocation(allocation, total, capacities)


@settings(max_examples=150, deadline=None)
@given(
    st.integers(min_value=130, max_value=250),
    st.lists(
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False), min_size=5, max_size=5
    ),
)
def test_rl_action_postprocessing_properties(total, weights):
    capacities = [127] * 5
    allocation = allocation_from_weights(weights, total, capacities)
    validate_allocation(allocation, total, capacities)


class TestAllocationFromWeightsBatch:
    def test_rows_match_scalar_path_exactly(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(32, 5))
        totals = rng.integers(130, 251, size=32)
        capacities = [127] * 5
        batch = allocation_from_weights_batch(weights, totals, capacities)
        assert batch.shape == (32, 5)
        for b in range(32):
            expected = allocation_from_weights(weights[b], int(totals[b]), capacities)
            assert batch[b].tolist() == expected

    def test_per_row_capacities(self):
        rng = np.random.default_rng(1)
        weights = rng.uniform(0, 1, size=(16, 5))
        capacities = rng.integers(30, 128, size=(16, 5))
        totals = np.minimum(capacities.sum(axis=1), 250)
        batch = allocation_from_weights_batch(weights, totals, capacities)
        for b in range(16):
            expected = allocation_from_weights(
                weights[b], int(totals[b]), capacities[b].tolist()
            )
            assert batch[b].tolist() == expected
            validate_allocation(batch[b].tolist(), int(totals[b]), capacities[b].tolist())

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            allocation_from_weights_batch(np.ones(5), [100], [127] * 5)  # 1-D weights
        with pytest.raises(ValueError):
            allocation_from_weights_batch(np.ones((2, 5)), [100], [127] * 5)  # totals len
        with pytest.raises(ValueError):
            allocation_from_weights_batch(np.ones((2, 5)), [100, 0], [127] * 5)  # total <= 0
        with pytest.raises(ValueError):
            allocation_from_weights_batch(np.ones((2, 5)), [100, 700], [127] * 5)  # capacity
        with pytest.raises(ValueError):
            allocation_from_weights_batch(np.ones((2, 5)), [100, 100], [127] * 4)  # shape

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=16),
    )
    def test_property_batch_equals_scalar(self, seed, batch_size):
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=(batch_size, 5)) * 3
        totals = rng.integers(130, 251, size=batch_size)
        capacities = [127] * 5
        batch = allocation_from_weights_batch(weights, totals, capacities)
        for b in range(batch_size):
            assert batch[b].tolist() == allocation_from_weights(
                weights[b], int(totals[b]), capacities
            )
