"""Unit tests for the abstract circuit specification."""

import pytest

from repro.circuits.circuit import CircuitSpec


def make_spec(**overrides):
    base = dict(
        num_qubits=150, depth=10, num_shots=20_000, num_two_qubit_gates=450,
        num_single_qubit_gates=600, name="test",
    )
    base.update(overrides)
    return CircuitSpec(**base)


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_qubits", 0),
            ("depth", 0),
            ("num_shots", 0),
            ("num_two_qubit_gates", -1),
            ("num_single_qubit_gates", -5),
        ],
    )
    def test_invalid_fields(self, field, value):
        with pytest.raises(ValueError):
            make_spec(**{field: value})

    def test_immutable(self):
        spec = make_spec()
        with pytest.raises(Exception):
            spec.depth = 3


class TestDerived:
    def test_density(self):
        spec = make_spec()
        assert spec.two_qubit_gate_density == pytest.approx(450 / (150 * 10))

    def test_total_gates(self):
        assert make_spec().total_gates == 1050


class TestSubcircuit:
    def test_proportional_gate_split(self):
        spec = make_spec()
        frag = spec.subcircuit(75)
        assert frag.num_qubits == 75
        assert frag.depth == spec.depth
        assert frag.num_shots == spec.num_shots
        assert frag.num_two_qubit_gates == 225
        assert frag.num_single_qubit_gates == 300

    def test_full_width_subcircuit_is_identity_on_counts(self):
        spec = make_spec()
        frag = spec.subcircuit(spec.num_qubits)
        assert frag.num_two_qubit_gates == spec.num_two_qubit_gates

    def test_fragments_roughly_conserve_gates(self):
        spec = make_spec(num_qubits=190, num_two_qubit_gates=571)
        parts = [95, 60, 35]
        total_t2 = sum(spec.subcircuit(p).num_two_qubit_gates for p in parts)
        assert abs(total_t2 - spec.num_two_qubit_gates) <= len(parts)

    def test_invalid_width(self):
        spec = make_spec()
        with pytest.raises(ValueError):
            spec.subcircuit(0)
        with pytest.raises(ValueError):
            spec.subcircuit(spec.num_qubits + 1)

    def test_custom_name(self):
        frag = make_spec().subcircuit(10, name="fragment_a")
        assert frag.name == "fragment_a"


class TestSerialization:
    def test_dict_roundtrip(self):
        spec = make_spec()
        rebuilt = CircuitSpec.from_dict(spec.as_dict())
        assert rebuilt == spec

    def test_from_dict_defaults(self):
        rebuilt = CircuitSpec.from_dict(
            {"num_qubits": 5, "depth": 2, "num_shots": 100, "num_two_qubit_gates": 3}
        )
        assert rebuilt.num_single_qubit_gates == 0
        assert rebuilt.name == "circuit"
