"""Test package."""
