"""Unit tests for the synthetic circuit generators."""

import numpy as np
import pytest

from repro.circuits.generators import (
    ghz_spec,
    qaoa_spec,
    quantum_volume_spec,
    random_circuit_spec,
    random_large_circuit_spec,
)


class TestRandomCircuit:
    def test_within_ranges(self, rng):
        for _ in range(50):
            spec = random_circuit_spec(rng)
            assert 130 <= spec.num_qubits <= 250
            assert 5 <= spec.depth <= 20
            assert 10_000 <= spec.num_shots <= 100_000
            assert spec.num_two_qubit_gates >= 0

    def test_density_controls_two_qubit_count(self, rng):
        spec = random_circuit_spec(rng, two_qubit_density=0.2)
        slots = spec.num_qubits * spec.depth
        assert spec.num_two_qubit_gates == pytest.approx(0.2 * slots, abs=1)
        # Gate counts never exceed the available slots.
        assert 2 * spec.num_two_qubit_gates + spec.num_single_qubit_gates <= slots

    def test_reproducible(self):
        s1 = random_circuit_spec(np.random.default_rng(3))
        s2 = random_circuit_spec(np.random.default_rng(3))
        assert s1 == s2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_circuit_spec(rng, qubit_range=(10, 5))
        with pytest.raises(ValueError):
            random_circuit_spec(rng, two_qubit_density=0.8)


class TestLargeCircuit:
    def test_exceeds_single_device(self, rng):
        for _ in range(30):
            spec = random_large_circuit_spec(rng, min_device_capacity=127, total_cloud_capacity=635)
            assert spec.num_qubits > 127
            assert spec.num_qubits < 635

    def test_infeasible_window(self, rng):
        with pytest.raises(ValueError):
            random_large_circuit_spec(rng, min_device_capacity=300, total_cloud_capacity=301)


class TestNamedCircuits:
    def test_ghz(self):
        spec = ghz_spec(150)
        assert spec.num_qubits == 150
        assert spec.num_two_qubit_gates == 149
        assert spec.num_single_qubit_gates == 1
        with pytest.raises(ValueError):
            ghz_spec(1)

    def test_qaoa(self, rng):
        spec = qaoa_spec(100, num_layers=4, edge_density=0.1, rng=rng)
        assert spec.num_qubits == 100
        assert spec.num_two_qubit_gates >= 4 * 99  # at least the connectivity floor
        assert spec.num_single_qubit_gates == 4 * 100 + 100
        with pytest.raises(ValueError):
            qaoa_spec(100, num_layers=0)
        with pytest.raises(ValueError):
            qaoa_spec(100, edge_density=0.0)

    def test_quantum_volume(self):
        spec = quantum_volume_spec(16)
        assert spec.depth == 16
        assert spec.num_two_qubit_gates == 16 * 8
        assert spec.num_single_qubit_gates == 16 * 48
        with pytest.raises(ValueError):
            quantum_volume_spec(1)
