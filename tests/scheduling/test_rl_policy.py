"""Unit tests for the RL allocation policy and the shared observation builder."""

import numpy as np
import pytest

from repro.circuits.partition import validate_allocation
from repro.scheduling.rl_policy import (
    CLOPS_NORM,
    DEFAULT_MAX_DEVICES,
    DEVICE_LEVEL_NORM,
    RLAllocationPolicy,
    build_observation,
)

from tests.scheduling.test_base import FakeDevice
from tests.scheduling.test_policies import Job, fleet


class StubModel:
    """Deterministic 'trained model' returning fixed allocation weights."""

    def __init__(self, weights):
        self.weights = np.asarray(weights, dtype=np.float64)
        self.observations = []

    def predict(self, observation, deterministic=True):
        self.observations.append(np.asarray(observation))
        return self.weights.copy(), {}


class TestBuildObservation:
    def test_dimension_matches_paper(self):
        obs = build_observation(190, [(127, 0.01, 220_000)] * 5)
        assert obs.shape == (1 + 3 * DEFAULT_MAX_DEVICES,)
        assert obs.shape == (16,)

    def test_layout_and_normalisation(self):
        obs = build_observation(200, [(127, 0.013, 220_000), (60, 0.009, 30_000)], max_qubits=250)
        assert obs[0] == pytest.approx(200 / 250)
        assert obs[1] == pytest.approx(127 / DEVICE_LEVEL_NORM)
        assert obs[2] == pytest.approx(0.013)
        assert obs[3] == pytest.approx(220_000 / CLOPS_NORM)
        assert obs[4] == pytest.approx(60 / DEVICE_LEVEL_NORM)
        # Unused slots padded with zeros.
        assert np.all(obs[7:] == 0.0)

    def test_too_many_devices_rejected(self):
        with pytest.raises(ValueError):
            build_observation(100, [(10, 0.01, 1000)] * 6, max_devices=5)

    def test_invalid_qubits(self):
        with pytest.raises(ValueError):
            build_observation(0, [])


class TestRLAllocationPolicy:
    def test_requires_predict(self):
        with pytest.raises(TypeError):
            RLAllocationPolicy(model=object())

    def test_allocation_follows_weights(self):
        model = StubModel([1.0, 1.0, 0.0, 0.0, 0.0])
        plan = RLAllocationPolicy(model).plan(Job(200), fleet())
        assert plan.total_qubits == 200
        assert plan.device_names == ["ibm_strasbourg", "ibm_brussels"]
        assert plan.qubit_counts == [100, 100]

    def test_allocation_respects_free_capacity(self):
        model = StubModel([1.0, 0.0, 0.0, 0.0, 0.0])
        devices = fleet(frees=(50, 127, 127, 127, 127))
        plan = RLAllocationPolicy(model).plan(Job(200), devices)
        counts = dict(zip(plan.device_names, plan.qubit_counts))
        assert counts["ibm_strasbourg"] <= 50
        validate_allocation(
            [counts.get(d.name, 0) for d in devices], 200, [d.free_qubits for d in devices]
        )

    def test_returns_none_when_insufficient_capacity(self):
        model = StubModel(np.ones(5))
        devices = fleet(frees=(10, 10, 10, 10, 10))
        assert RLAllocationPolicy(model).plan(Job(200), devices) is None

    def test_observation_passed_to_model_matches_builder(self):
        model = StubModel(np.ones(5))
        devices = fleet()
        RLAllocationPolicy(model).plan(Job(190), devices)
        expected = build_observation(
            190, [(d.free_qubits, d.error_score(), d.clops) for d in devices]
        )
        assert np.allclose(model.observations[0], expected)

    def test_uniform_weights_spread_across_all_devices(self):
        model = StubModel(np.ones(5))
        plan = RLAllocationPolicy(model).plan(Job(200), fleet())
        assert plan.num_devices == 5

    def test_works_with_trained_actor_critic(self):
        from repro.gymapi.spaces import Box
        from repro.rl.policies import ActorCriticPolicy

        policy = ActorCriticPolicy(
            Box(0.0, np.inf, shape=(16,), dtype=np.float64),
            Box(0.0, 1.0, shape=(5,), dtype=np.float64),
            seed=0,
        )
        plan = RLAllocationPolicy(policy).plan(Job(190), fleet())
        assert plan is not None
        assert plan.total_qubits == 190
