"""RL policy behaviour with fewer devices than the observation's padded slots."""

import numpy as np
import pytest

from repro.scheduling.rl_policy import RLAllocationPolicy, build_observation

from tests.scheduling.test_base import FakeDevice
from tests.scheduling.test_policies import Job


class ConstantModel:
    def __init__(self, weights):
        self.weights = np.asarray(weights, dtype=np.float64)

    def predict(self, observation, deterministic=True):
        return self.weights.copy(), {}


class TestSmallFleet:
    def test_observation_padding_for_three_devices(self):
        obs = build_observation(150, [(127, 0.01, 220_000)] * 3)
        assert obs.shape == (16,)
        assert np.all(obs[1 + 3 * 3 :] == 0.0)

    def test_plan_over_three_devices(self):
        devices = [
            FakeDevice("a", 127, clops=200_000, score=0.010),
            FakeDevice("b", 127, clops=100_000, score=0.011),
            FakeDevice("c", 127, clops=50_000, score=0.012),
        ]
        policy = RLAllocationPolicy(ConstantModel(np.ones(5)))
        plan = policy.plan(Job(200), devices)
        assert plan.total_qubits == 200
        assert plan.num_devices <= 3

    def test_extra_weight_dimensions_ignored(self):
        devices = [FakeDevice("a", 127), FakeDevice("b", 127)]
        policy = RLAllocationPolicy(ConstantModel([0.5, 0.5, 9.0, 9.0, 9.0]))
        plan = policy.plan(Job(150), devices)
        assert plan.total_qubits == 150
        assert set(plan.device_names) == {"a", "b"}

    def test_more_devices_than_slots_truncated(self):
        devices = [FakeDevice(f"d{i}", 127) for i in range(7)]
        policy = RLAllocationPolicy(ConstantModel(np.ones(5)), max_devices=5)
        plan = policy.plan(Job(300), devices)
        assert plan.total_qubits == 300
        assert set(plan.device_names) <= {f"d{i}" for i in range(5)}
