"""Unit tests for allocation plans and the policy base class."""

import pytest

from repro.scheduling.base import AllocationPlan, AllocationPolicy, DeviceAllocation


class FakeDevice:
    def __init__(self, name, free, capacity=127, clops=100_000, score=0.01, utilization=None):
        self.name = name
        self.free_qubits = free
        self.num_qubits = capacity
        self.clops = clops
        self._score = score
        self.utilization = (
            utilization if utilization is not None else 1.0 - free / capacity
        )

    def error_score(self, **kwargs):
        return self._score


class TestDeviceAllocation:
    def test_positive_qubits_required(self):
        with pytest.raises(ValueError):
            DeviceAllocation(FakeDevice("d", 10), 0)


class TestAllocationPlan:
    def test_from_pairs_drops_zeros(self):
        devices = [FakeDevice("a", 100), FakeDevice("b", 100), FakeDevice("c", 100)]
        plan = AllocationPlan.from_pairs(zip(devices, [60, 0, 40]))
        assert plan.num_devices == 2
        assert plan.device_names == ["a", "c"]
        assert plan.qubit_counts == [60, 40]
        assert plan.total_qubits == 100

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError):
            AllocationPlan.from_pairs([])

    def test_duplicate_devices_rejected(self):
        device = FakeDevice("a", 100)
        with pytest.raises(ValueError):
            AllocationPlan.from_pairs([(device, 10), (device, 20)])

    def test_feasibility_check(self):
        devices = [FakeDevice("a", 50), FakeDevice("b", 5)]
        plan = AllocationPlan.from_pairs(zip(devices, [40, 10]))
        assert not plan.is_feasible_now()
        devices[1].free_qubits = 10
        assert plan.is_feasible_now()


class TestGreedyHelper:
    class _Policy(AllocationPolicy):
        name = "test"

        def plan(self, job, devices):
            return self._greedy_fill(job, list(devices))

    class _Job:
        def __init__(self, q):
            self.num_qubits = q

    def test_greedy_fill_uses_order(self):
        devices = [FakeDevice("a", 100), FakeDevice("b", 100)]
        plan = self._Policy().plan(self._Job(150), devices)
        assert plan.device_names == ["a", "b"]
        assert plan.qubit_counts == [100, 50]

    def test_greedy_fill_returns_none_when_infeasible(self):
        devices = [FakeDevice("a", 60), FakeDevice("b", 60)]
        assert self._Policy().plan(self._Job(150), devices) is None
