"""Unit tests for the policy registry."""

import pytest

from repro.scheduling.base import AllocationPolicy
from repro.scheduling.error_aware import ErrorAwarePolicy
from repro.scheduling.registry import available_policies, create_policy, register_policy
from repro.scheduling.speed import SpeedPolicy


class TestRegistry:
    def test_paper_modes_registered(self):
        names = available_policies()
        for name in ("speed", "fidelity", "fair", "rlbase"):
            assert name in names

    def test_create_by_name(self):
        assert isinstance(create_policy("speed"), SpeedPolicy)
        assert isinstance(create_policy("fidelity"), ErrorAwarePolicy)
        assert isinstance(create_policy("error_aware"), ErrorAwarePolicy)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            create_policy("quantum_teleport")

    def test_rl_requires_model(self):
        with pytest.raises(ValueError):
            create_policy("rlbase")

    def test_rl_with_stub_model(self):
        class Stub:
            def predict(self, obs, deterministic=True):
                return [1.0] * 5, {}

        policy = create_policy("rlbase", model=Stub())
        assert policy.name == "rlbase"

    def test_register_custom_policy(self):
        class MyPolicy(AllocationPolicy):
            name = "custom_test_policy"

            def plan(self, job, devices):
                return None

        register_policy("custom_test_policy", MyPolicy)
        assert "custom_test_policy" in available_policies()
        assert isinstance(create_policy("custom_test_policy"), MyPolicy)

    def test_register_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_policy("", SpeedPolicy)

    def test_kwargs_forwarded(self):
        policy = create_policy("fidelity", strict=False)
        assert policy.strict is False
