"""Test package."""
