"""Unit tests for the paper's three heuristic policies (speed, fidelity, fair)."""

import pytest

from repro.metrics.error_score import ErrorScoreWeights
from repro.scheduling.error_aware import ErrorAwarePolicy
from repro.scheduling.fair import FairPolicy
from repro.scheduling.speed import SpeedPolicy

from tests.scheduling.test_base import FakeDevice


class Job:
    def __init__(self, q):
        self.num_qubits = q


def fleet(frees=(127, 127, 127, 127, 127)):
    """Five fake devices mirroring the paper's fleet (CLOPS and error ranking)."""
    specs = [
        ("ibm_strasbourg", 220_000, 0.011),
        ("ibm_brussels", 220_000, 0.012),
        ("ibm_kyiv", 30_000, 0.009),
        ("ibm_quebec", 32_000, 0.010),
        ("ibm_kawasaki", 29_000, 0.014),
    ]
    return [
        FakeDevice(name, free, capacity=127, clops=clops, score=score)
        for (name, clops, score), free in zip(specs, frees)
    ]


class TestSpeedPolicy:
    def test_prefers_highest_clops(self):
        plan = SpeedPolicy().plan(Job(190), fleet())
        assert plan.device_names[:2] == ["ibm_brussels", "ibm_strasbourg"] or plan.device_names[
            :2
        ] == ["ibm_strasbourg", "ibm_brussels"]
        assert plan.total_qubits == 190
        assert plan.num_devices == 2

    def test_spills_to_slower_devices_when_fast_ones_busy(self):
        devices = fleet(frees=(10, 20, 127, 127, 127))
        plan = SpeedPolicy().plan(Job(190), devices)
        assert plan.total_qubits == 190
        assert plan.num_devices >= 3
        # Fast devices appear first even though they are nearly full.
        assert plan.device_names[0] in ("ibm_strasbourg", "ibm_brussels")

    def test_returns_none_when_cloud_full(self):
        devices = fleet(frees=(10, 10, 10, 10, 10))
        assert SpeedPolicy().plan(Job(190), devices) is None

    def test_prefer_idle_tiebreak(self):
        devices = fleet(frees=(60, 127, 127, 127, 127))
        plan = SpeedPolicy(prefer_idle=True).plan(Job(100), devices)
        assert plan.device_names[0] == "ibm_brussels"
        plan = SpeedPolicy(prefer_idle=False).plan(Job(100), devices)
        assert plan.device_names[0] == "ibm_brussels"  # alphabetical tiebreak


class TestErrorAwarePolicy:
    def test_selects_lowest_error_devices(self):
        plan = ErrorAwarePolicy().plan(Job(190), fleet())
        assert plan.device_names == ["ibm_kyiv", "ibm_quebec"]
        assert plan.qubit_counts == [127, 63]

    def test_strict_mode_waits_for_best_devices(self):
        # The two best devices are busy: strict mode refuses to fall back.
        devices = fleet(frees=(127, 127, 30, 30, 127))
        assert ErrorAwarePolicy(strict=True).plan(Job(190), devices) is None

    def test_non_strict_mode_falls_back(self):
        devices = fleet(frees=(127, 127, 30, 30, 127))
        plan = ErrorAwarePolicy(strict=False).plan(Job(190), devices)
        assert plan is not None
        assert plan.total_qubits == 190
        assert plan.device_names[0] == "ibm_kyiv"

    def test_custom_weights_change_ranking(self):
        devices = [
            FakeDevice("readout_bad", 127, score=None),
            FakeDevice("gates_bad", 127, score=None),
        ]

        # Attach calibration-style error scores through a custom error_score.
        def score_factory(readout, one_q, two_q):
            def score(alpha=0.5, theta=0.3, gamma=0.2):
                return alpha * readout + theta * one_q + gamma * two_q

            return score

        # readout_bad: poor readout but excellent two-qubit gates.
        # gates_bad: good readout but poor two-qubit gates.  With the paper's
        # default weights the two-qubit term is down-weighted enough that
        # gates_bad still wins; a gate-heavy weighting flips the ranking.
        devices[0].error_score = score_factory(0.05, 1e-4, 1e-3)
        devices[1].error_score = score_factory(0.01, 1e-4, 9e-2)

        default_plan = ErrorAwarePolicy().plan(Job(100), devices)
        assert default_plan.device_names == ["gates_bad"]

        gate_heavy = ErrorAwarePolicy(weights=ErrorScoreWeights(0.1, 0.1, 0.8))
        plan = gate_heavy.plan(Job(100), devices)
        assert plan.device_names == ["readout_bad"]

    def test_job_larger_than_cloud(self):
        assert ErrorAwarePolicy().plan(Job(10_000), fleet()) is None


class TestFairPolicy:
    def test_prefers_least_utilised(self):
        devices = fleet(frees=(127, 40, 90, 127, 60))
        plan = FairPolicy().plan(Job(190), devices)
        # The two completely idle devices are used first.
        assert set(plan.device_names[:2]) == {"ibm_strasbourg", "ibm_quebec"}
        assert plan.total_qubits == 190

    def test_ignores_clops_and_errors(self):
        devices = fleet(frees=(0, 0, 127, 127, 127))
        plan = FairPolicy().plan(Job(150), devices)
        assert set(plan.device_names) <= {"ibm_kyiv", "ibm_quebec", "ibm_kawasaki"}

    def test_returns_none_when_infeasible(self):
        assert FairPolicy().plan(Job(700), fleet()) is None
