"""Unit tests for the extension policies (balanced trade-off, min-fragmentation)."""

import pytest

from repro.scheduling.registry import create_policy
from repro.scheduling.tradeoff import BalancedTradeoffPolicy, MinFragmentationPolicy

from tests.scheduling.test_base import FakeDevice
from tests.scheduling.test_policies import Job, fleet


class TestBalancedTradeoffPolicy:
    def test_weight_validation(self):
        with pytest.raises(ValueError):
            BalancedTradeoffPolicy(fidelity_weight=1.5)

    def test_zero_weight_matches_speed_ordering(self):
        plan = BalancedTradeoffPolicy(fidelity_weight=0.0).plan(Job(190), fleet())
        # Fastest devices first (strasbourg/brussels, both CLOPS 220k).
        assert set(plan.device_names) == {"ibm_strasbourg", "ibm_brussels"}

    def test_full_weight_matches_error_ordering(self):
        plan = BalancedTradeoffPolicy(fidelity_weight=1.0).plan(Job(190), fleet())
        assert plan.device_names == ["ibm_kyiv", "ibm_quebec"]

    def test_intermediate_weight_mixes_criteria(self):
        # With a balanced weight the slow-and-noisy kawasaki ranks last, so a
        # job that needs four of the five devices never touches it.
        plan = BalancedTradeoffPolicy(fidelity_weight=0.5).plan(Job(500), fleet())
        assert plan.num_devices == 4
        assert "ibm_kawasaki" not in plan.device_names

    def test_total_and_feasibility(self):
        plan = BalancedTradeoffPolicy().plan(Job(240), fleet())
        assert plan.total_qubits == 240
        assert BalancedTradeoffPolicy().plan(Job(700), fleet()) is None

    def test_uniform_fleet_degenerates_gracefully(self):
        devices = [FakeDevice(f"d{i}", 100, clops=1000, score=0.01) for i in range(3)]
        plan = BalancedTradeoffPolicy().plan(Job(150), devices)
        assert plan.total_qubits == 150

    def test_empty_fleet(self):
        assert BalancedTradeoffPolicy().plan(Job(10), []) is None


class TestMinFragmentationPolicy:
    def test_uses_fewest_devices(self):
        devices = fleet(frees=(127, 90, 127, 30, 127))
        plan = MinFragmentationPolicy().plan(Job(250), devices)
        assert plan.num_devices == 2
        assert all(f == 127 for f in [d.free_qubits for d in plan.devices])

    def test_tie_break_prefers_low_error(self):
        plan = MinFragmentationPolicy().plan(Job(100), fleet())
        # All devices fully free: the least-noisy one (kyiv) wins the tie.
        assert plan.device_names == ["ibm_kyiv"]

    def test_infeasible(self):
        assert MinFragmentationPolicy().plan(Job(700), fleet()) is None


class TestRegistryIntegration:
    def test_creatable_by_name(self):
        assert isinstance(create_policy("balanced"), BalancedTradeoffPolicy)
        assert isinstance(create_policy("min_fragmentation"), MinFragmentationPolicy)
        assert create_policy("balanced", fidelity_weight=0.9).fidelity_weight == 0.9

    def test_end_to_end_simulation(self):
        from repro.cloud.config import SimulationConfig
        from repro.cloud.environment import QCloudSimEnv

        for name in ("balanced", "min_fragmentation"):
            env = QCloudSimEnv(SimulationConfig(num_jobs=6, seed=3, policy=name))
            records = env.run_until_complete()
            assert len(records) == 6

    def test_balanced_sweep_interpolates_fidelity(self):
        """Increasing the fidelity weight must not decrease mean fidelity much."""
        from repro.analysis.experiments import run_policy_simulation
        from repro.cloud.config import SimulationConfig

        cfg = SimulationConfig(num_jobs=20, seed=9)
        fidelities = {}
        for weight in (0.0, 1.0):
            summary, _ = run_policy_simulation(
                cfg.with_policy("balanced"), policy=BalancedTradeoffPolicy(weight)
            )
            fidelities[weight] = summary.mean_fidelity
        assert fidelities[1.0] >= fidelities[0.0] - 0.01
