"""Unit tests for the baseline policies (random, round-robin, even-split)."""

import pytest

from repro.scheduling.baselines import EvenSplitPolicy, RandomPolicy, RoundRobinPolicy

from tests.scheduling.test_base import FakeDevice
from tests.scheduling.test_policies import Job, fleet


class TestRandomPolicy:
    def test_valid_allocation(self):
        plan = RandomPolicy(seed=0).plan(Job(190), fleet())
        assert plan.total_qubits == 190

    def test_seeded_reproducibility(self):
        p1 = RandomPolicy(seed=5).plan(Job(190), fleet())
        p2 = RandomPolicy(seed=5).plan(Job(190), fleet())
        assert p1.device_names == p2.device_names

    def test_order_varies_across_draws(self):
        policy = RandomPolicy(seed=1)
        orders = {tuple(policy.plan(Job(190), fleet()).device_names) for _ in range(20)}
        assert len(orders) > 1


class TestRoundRobinPolicy:
    def test_rotates_starting_device(self):
        policy = RoundRobinPolicy()
        first = policy.plan(Job(150), fleet()).device_names[0]
        second = policy.plan(Job(150), fleet()).device_names[0]
        third = policy.plan(Job(150), fleet()).device_names[0]
        assert first != second or second != third

    def test_offset_not_advanced_when_infeasible(self):
        policy = RoundRobinPolicy()
        devices = fleet(frees=(0, 0, 0, 0, 0))
        assert policy.plan(Job(100), devices) is None
        assert policy._offset == 0

    def test_empty_fleet(self):
        assert RoundRobinPolicy().plan(Job(10), []) is None


class TestEvenSplitPolicy:
    def test_spreads_over_all_free_devices(self):
        plan = EvenSplitPolicy().plan(Job(200), fleet())
        assert plan.num_devices == 5
        assert max(plan.qubit_counts) - min(plan.qubit_counts) <= 1

    def test_skips_full_devices(self):
        devices = fleet(frees=(0, 127, 127, 127, 0))
        plan = EvenSplitPolicy().plan(Job(150), devices)
        assert plan.num_devices == 3
        assert "ibm_strasbourg" not in plan.device_names

    def test_infeasible(self):
        assert EvenSplitPolicy().plan(Job(700), fleet()) is None
