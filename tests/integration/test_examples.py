"""Smoke tests: every example script must run end-to-end.

The examples are part of the public deliverable; these tests execute them as
subprocesses (with small workloads) so that API drift breaks the build
rather than the documentation.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
SRC_DIR = Path(__file__).resolve().parents[2] / "src"


def run_example(script: str, *args: str, cwd=None) -> subprocess.CompletedProcess:
    # Resolve the package path absolutely: a relative PYTHONPATH (e.g. the
    # tier-1 ``PYTHONPATH=src``) breaks for subprocesses run from a tmp cwd.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=cwd,
        env=env,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "5")
        assert result.returncode == 0, result.stderr
        assert "Summary (one row of Table 2)" in result.stdout
        assert "fidelity" in result.stdout

    def test_compare_strategies(self):
        result = run_example("compare_strategies.py", "12")
        assert result.returncode == 0, result.stderr
        assert "Table 2 (reproduced, scaled workload)" in result.stdout
        assert "speed" in result.stdout and "fidelity" in result.stdout
        assert "highest mean fidelity" in result.stdout

    def test_parallel_sweep(self, tmp_path):
        store = str(tmp_path / "results")
        result = run_example("parallel_sweep.py", "8", "--store", store)
        assert result.returncode == 0, result.stderr
        assert "12 cells, 0 restored from cache" in result.stdout
        # A second run restores every cell from the content-keyed cache.
        result = run_example("parallel_sweep.py", "8", "--store", store)
        assert result.returncode == 0, result.stderr
        assert "12 cells, 12 restored from cache" in result.stdout

    def test_train_rl_scheduler(self, tmp_path):
        model_path = str(tmp_path / "policy.npz")
        result = run_example("train_rl_scheduler.py", "1024", model_path, cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        assert "Training curve (Fig. 5)" in result.stdout
        assert "Deployment in the discrete-event simulator" in result.stdout
        assert Path(model_path).exists()

    def test_scenario_sweep(self):
        result = run_example("scenario_sweep.py", "8")
        assert result.returncode == 0, result.stderr
        for scenario in ("static", "drift", "flaky-fleet", "rush-hour", "black-friday"):
            assert scenario in result.stdout
        assert "best fidelity under" in result.stdout

    def test_tenant_sweep(self):
        result = run_example("tenant_sweep.py", "8")
        assert result.returncode == 0, result.stderr
        for mix in ("single", "free-tier-vs-premium", "batch-vs-interactive",
                    "noisy-neighbor"):
            assert mix in result.stdout
        assert "Per-tenant SLO report" in result.stdout
        assert "premium" in result.stdout

    def test_adaptive_sweep(self):
        result = run_example("adaptive_sweep.py", "16")
        assert result.returncode == 0, result.stderr
        for policy in ("static", "reactive", "predictive"):
            assert policy in result.stdout
        assert "SLO attainment" in result.stdout
        assert "Control plane:" in result.stdout
        assert "AIMD rate adjustments" in result.stdout

    def test_multiregion_sweep(self):
        result = run_example("multiregion_sweep.py", "8")
        assert result.returncode == 0, result.stderr
        for topology in ("dual", "region-outage", "cross-region-rush-hour",
                         "follow-the-sun"):
            assert topology in result.stdout
        assert "Per-region report" in result.stdout
        assert "eu-central" in result.stdout and "us-east" in result.stdout

    def test_custom_policy(self):
        result = run_example("custom_policy.py", "20")
        assert result.returncode == 0, result.stderr
        assert "size_aware" in result.stdout

    def test_csv_workload(self, tmp_path):
        result = run_example("csv_workload.py", str(tmp_path))
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "ghz_sweep.csv").exists()
        assert (tmp_path / "qaoa_portfolio.json").exists()
        assert "Workload summaries" in result.stdout
