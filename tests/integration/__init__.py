"""Test package."""
