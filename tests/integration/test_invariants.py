"""System-level invariants checked over full simulation runs.

These complement the per-module property tests: whatever the policy, a
completed simulation must conserve qubits, respect capacities, keep the
timeline consistent and produce fidelities that satisfy Eqs. (4)-(8).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.metrics.fidelity import final_fidelity
from repro.scheduling.registry import create_policy

POLICIES = ("speed", "fidelity", "fair", "even_split", "random", "round_robin")


@pytest.mark.parametrize("policy", POLICIES)
def test_invariants_hold_for_every_policy(policy):
    cfg = SimulationConfig(num_jobs=15, seed=17, policy=policy)
    env = QCloudSimEnv(cfg)
    records = env.run_until_complete()
    assert len(records) == 15

    for record in records:
        # Allocation covers the demand without exceeding device capacity.
        assert sum(record.allocation) == record.num_qubits
        assert all(0 < a <= cfg.device_qubits for a in record.allocation)
        assert record.num_devices == len(record.allocation) == len(record.devices)
        # Timeline consistency.
        assert record.arrival_time <= record.start_time <= record.finish_time
        assert record.finish_time >= record.start_time + record.processing_time - 1e-9
        # Fidelity is a probability and matches the analytic recombination.
        assert 0.0 < record.fidelity <= 1.0
        expected = final_fidelity(
            [b.device for b in record.breakdowns], phi=cfg.comm_fidelity_penalty
        )
        assert record.fidelity == pytest.approx(expected)
        # Communication time follows Eq. (9) with per-link accounting.
        expected_comm = (record.num_devices - 1) * record.num_qubits * cfg.comm_latency_per_qubit
        assert record.communication_time == pytest.approx(expected_comm)

    # All qubits returned to the pools at the end.
    assert env.cloud.free_qubits == env.cloud.total_qubits


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_jobs=st.integers(min_value=1, max_value=12),
    policy=st.sampled_from(["speed", "fidelity", "fair"]),
    latency=st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
    phi=st.floats(min_value=0.8, max_value=1.0, allow_nan=False),
)
def test_random_configurations_complete_and_conserve_qubits(seed, num_jobs, policy, latency, phi):
    cfg = SimulationConfig(
        num_jobs=num_jobs,
        seed=seed,
        policy=policy,
        comm_latency_per_qubit=latency,
        comm_fidelity_penalty=phi,
    )
    env = QCloudSimEnv(cfg)
    records = env.run_until_complete()
    assert len(records) == num_jobs
    assert env.cloud.free_qubits == env.cloud.total_qubits
    assert all(0.0 < r.fidelity <= 1.0 for r in records)
    assert all(sum(r.allocation) == r.num_qubits for r in records)


def test_workload_independent_of_policy_object_reuse():
    """Reusing one policy instance across runs must not leak state."""
    policy = create_policy("speed")
    results = []
    for _ in range(2):
        cfg = SimulationConfig(num_jobs=10, seed=5)
        env = QCloudSimEnv(cfg, policy=policy)
        env.run_until_complete()
        results.append(env.summary().mean_fidelity)
    assert results[0] == pytest.approx(results[1])
