"""End-to-end integration tests: full pipeline including a trained RL policy."""

import numpy as np
import pytest

from repro.analysis.experiments import run_case_study
from repro.analysis.reporting import format_table2
from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.cloud.io import jobs_from_csv, jobs_to_csv
from repro.rlenv.train import train_allocation_policy
from repro.scheduling.rl_policy import RLAllocationPolicy
from repro.workloads import ghz_sweep_jobs, mixed_tenant_jobs


@pytest.fixture(scope="module")
def rl_model():
    model, _ = train_allocation_policy(total_timesteps=2048, n_steps=512, seed=1)
    return model


class TestFourStrategyCaseStudy:
    @pytest.fixture(scope="class")
    def result(self, rl_model):
        cfg = SimulationConfig(num_jobs=40, seed=21)
        return run_case_study(cfg, rl_model=rl_model)

    def test_all_four_strategies_complete(self, result):
        assert set(result.summaries) == {"speed", "fidelity", "fair", "rlbase"}
        for records in result.records.values():
            assert len(records) == 40

    def test_fidelity_strategy_has_best_fidelity_and_least_comm(self, result):
        best = max(result.summaries.values(), key=lambda s: s.mean_fidelity)
        least_comm = min(result.summaries.values(), key=lambda s: s.total_communication_time)
        assert best.strategy == "fidelity"
        assert least_comm.strategy == "fidelity"

    def test_rl_strategy_uses_most_devices(self, result):
        devices_per_job = {
            name: summary.mean_devices_per_job for name, summary in result.summaries.items()
        }
        assert devices_per_job["rlbase"] == max(devices_per_job.values())
        assert result.summaries["rlbase"].total_communication_time == max(
            s.total_communication_time for s in result.summaries.values()
        )

    def test_table2_rendering(self, result):
        table = format_table2(result.summaries)
        for name in ("speed", "fidelity", "fair", "rlbase"):
            assert name in table


class TestAlternativeWorkloads:
    def test_ghz_sweep_end_to_end(self):
        cfg = SimulationConfig(num_jobs=1, seed=0)  # devices/communication config only
        env = QCloudSimEnv(cfg, jobs=ghz_sweep_jobs(widths=[130, 170, 210]), policy=None)
        records = env.run_until_complete()
        assert len(records) == 3
        # Wider GHZ states have more two-qubit gates and hence lower fidelity.
        fidelities = {r.num_qubits: r.fidelity for r in records}
        assert fidelities[210] < fidelities[130]

    def test_mixed_tenant_poisson_trace(self):
        cfg = SimulationConfig(num_jobs=1, seed=0, policy="fair")
        env = QCloudSimEnv(cfg, jobs=mixed_tenant_jobs(num_jobs=15, seed=4))
        records = env.run_until_complete()
        assert len(records) == 15
        assert all(r.start_time >= r.arrival_time for r in records)

    def test_csv_workload_roundtrip_through_simulation(self, tmp_path):
        jobs = ghz_sweep_jobs(widths=[140, 180])
        path = str(tmp_path / "workload.csv")
        jobs_to_csv(jobs, path)
        loaded = jobs_from_csv(path)
        cfg = SimulationConfig(num_jobs=1, seed=0)
        env = QCloudSimEnv(cfg, jobs=loaded)
        records = env.run_until_complete()
        assert len(records) == 2


class TestRLDeploymentConsistency:
    def test_rl_policy_respects_capacity_in_simulation(self, rl_model):
        cfg = SimulationConfig(num_jobs=20, seed=31)
        env = QCloudSimEnv(cfg, policy=RLAllocationPolicy(rl_model))
        records = env.run_until_complete()
        assert len(records) == 20
        for record in records:
            assert sum(record.allocation) == record.num_qubits
            assert all(0 < a <= 127 for a in record.allocation)
        assert env.cloud.free_qubits == env.cloud.total_qubits
