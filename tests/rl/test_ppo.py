"""Unit and learning tests for the PPO algorithm."""

import numpy as np
import pytest

from repro.gymapi import Env, spaces
from repro.rl.callbacks import TrainingCurveCallback
from repro.rl.ppo import PPO


class ContinuousTargetEnv(Env):
    """Single-step environment: reward is highest when the action matches a
    target direction encoded in the observation.  PPO must learn the mapping.
    """

    def __init__(self, dim=3, seed=0):
        self.observation_space = spaces.Box(0.0, 1.0, shape=(dim,), dtype=np.float64)
        self.action_space = spaces.Box(0.0, 1.0, shape=(dim,), dtype=np.float64)
        self.dim = dim
        self._obs = None

    def reset(self, *, seed=None, options=None):
        super().reset(seed=seed)
        self._obs = self.np_random.random(self.dim)
        return self._obs.copy(), {}

    def step(self, action):
        action = np.clip(np.asarray(action, dtype=np.float64), 0.0, 1.0)
        reward = 1.0 - float(np.mean(np.abs(action - self._obs)))
        obs = self._obs.copy()
        return obs, reward, True, False, {}


class DiscreteBanditEnv(Env):
    """Contextual bandit with a discrete action space: the observation encodes
    which arm pays."""

    def __init__(self):
        self.observation_space = spaces.Box(0.0, 1.0, shape=(2,), dtype=np.float64)
        self.action_space = spaces.Discrete(2)
        self._target = 0

    def reset(self, *, seed=None, options=None):
        super().reset(seed=seed)
        self._target = int(self.np_random.integers(2))
        obs = np.zeros(2)
        obs[self._target] = 1.0
        return obs, {}

    def step(self, action):
        reward = 1.0 if int(action) == self._target else 0.0
        obs = np.zeros(2)
        obs[self._target] = 1.0
        return obs, reward, True, False, {}


class TestConstruction:
    def test_unknown_policy_name(self):
        with pytest.raises(ValueError):
            PPO("CnnPolicy", ContinuousTargetEnv())

    def test_invalid_total_timesteps(self):
        model = PPO("MlpPolicy", ContinuousTargetEnv(), n_steps=8, batch_size=4, seed=0)
        with pytest.raises(ValueError):
            model.learn(total_timesteps=0)

    def test_default_hyperparameters_match_sb3(self):
        model = PPO("MlpPolicy", ContinuousTargetEnv(), seed=0)
        assert model.n_steps == 2048
        assert model.batch_size == 64
        assert model.n_epochs == 10
        assert model.gamma == 0.99
        assert model.gae_lambda == 0.95
        assert model.clip_range_schedule(1.0) == 0.2
        assert model.ent_coef == 0.0
        assert model.vf_coef == 0.5
        assert model.max_grad_norm == 0.5


class TestLearning:
    def test_continuous_reward_improves(self):
        env = ContinuousTargetEnv()
        model = PPO(
            "MlpPolicy", env, n_steps=256, batch_size=64, n_epochs=10,
            learning_rate=1e-3, seed=1,
        )
        curve_cb = TrainingCurveCallback()
        model.learn(total_timesteps=256 * 12, callback=curve_cb)
        rewards = [p["ep_rew_mean"] for p in curve_cb.curve]
        assert rewards[-1] > rewards[0] + 0.05
        assert rewards[-1] > 0.75

    def test_discrete_bandit_is_solved(self):
        env = DiscreteBanditEnv()
        model = PPO(
            "MlpPolicy", env, n_steps=256, batch_size=64, n_epochs=10,
            learning_rate=1e-3, ent_coef=0.01, seed=2,
        )
        model.learn(total_timesteps=256 * 12)
        # Deterministic policy should pick the rewarded arm for both contexts.
        for target in (0, 1):
            obs = np.zeros(2)
            obs[target] = 1.0
            action, _ = model.predict(obs)
            assert int(action) == target

    def test_entropy_loss_starts_near_minus_action_dim_entropy(self):
        env = ContinuousTargetEnv(dim=5)
        model = PPO("MlpPolicy", env, n_steps=64, batch_size=32, n_epochs=2, seed=3)
        model.learn(total_timesteps=64)
        first_entropy_loss = model.logger.values("train/entropy_loss")[0]
        # 5-dim unit Gaussian entropy ≈ 7.09 → entropy loss ≈ -7.09 (paper Fig. 5).
        assert first_entropy_loss == pytest.approx(-7.09, abs=0.15)

    def test_logger_records_expected_keys(self):
        model = PPO("MlpPolicy", ContinuousTargetEnv(), n_steps=64, batch_size=32, seed=4)
        model.learn(total_timesteps=128)
        for key in (
            "rollout/ep_rew_mean",
            "train/entropy_loss",
            "train/policy_gradient_loss",
            "train/value_loss",
            "train/approx_kl",
            "train/clip_fraction",
            "train/explained_variance",
            "train/std",
        ):
            assert model.logger.values(key), key

    def test_progress_remaining_decreases(self):
        model = PPO("MlpPolicy", ContinuousTargetEnv(), n_steps=64, batch_size=32, seed=5)
        assert model.progress_remaining == 1.0
        model.learn(total_timesteps=128)
        assert model.progress_remaining <= 0.5

    def test_seeded_training_is_reproducible(self):
        def run():
            env = ContinuousTargetEnv()
            model = PPO("MlpPolicy", env, n_steps=64, batch_size=32, n_epochs=3, seed=11)
            model.learn(total_timesteps=128)
            return model.policy.parameters_flat

        assert np.allclose(run(), run())

    def test_target_kl_early_stops_epochs(self):
        env = ContinuousTargetEnv()
        model = PPO(
            "MlpPolicy", env, n_steps=64, batch_size=32, n_epochs=10,
            learning_rate=5e-2, target_kl=1e-6, seed=6,
        )
        model.learn(total_timesteps=64)  # should not blow up
        assert model.num_timesteps == 64


class TestPersistence:
    def test_save_and_reload_policy(self, tmp_path):
        env = ContinuousTargetEnv()
        model = PPO("MlpPolicy", env, n_steps=64, batch_size=32, seed=7)
        model.learn(total_timesteps=64)
        obs = np.full(3, 0.5)
        expected, _ = model.predict(obs)

        path = str(tmp_path / "model.npz")
        model.save(path)
        fresh = PPO("MlpPolicy", ContinuousTargetEnv(), n_steps=64, batch_size=32, seed=99)
        fresh.load_parameters(path)
        loaded, _ = fresh.predict(obs)
        assert np.allclose(expected, loaded)

    def test_training_curve_export(self):
        model = PPO("MlpPolicy", ContinuousTargetEnv(), n_steps=64, batch_size=32, seed=8)
        model.learn(total_timesteps=128)
        curve = model.training_curve()
        assert "rollout/ep_rew_mean" in curve
        assert len(curve["rollout/ep_rew_mean"]["steps"]) == 2
