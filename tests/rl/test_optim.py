"""Unit tests for the optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.rl.nn import Adam, Linear, MLP, Parameter, SGD, clip_grad_norm_


def quadratic_problem(dim=4, seed=0):
    """A simple convex problem: minimise 0.5 * ||x - target||^2."""
    rng = np.random.default_rng(seed)
    target = rng.standard_normal(dim)
    param = Parameter(np.zeros(dim), "x")
    return param, target


class TestSGD:
    def test_converges_on_quadratic(self):
        param, target = quadratic_problem()
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            param.grad += param.data - target
            opt.step()
        assert np.allclose(param.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        param1, target = quadratic_problem(seed=1)
        param2 = Parameter(np.zeros_like(param1.data), "x")
        plain = SGD([param1], lr=0.01)
        momentum = SGD([param2], lr=0.01, momentum=0.9)
        for _ in range(50):
            for param, opt in ((param1, plain), (param2, momentum)):
                opt.zero_grad()
                param.grad += param.data - target
                opt.step()
        assert np.linalg.norm(param2.data - target) < np.linalg.norm(param1.data - target)

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(2))], lr=0.1, momentum=1.5)


class TestAdam:
    def test_converges_on_quadratic(self):
        param, target = quadratic_problem(seed=2)
        opt = Adam([param], lr=0.05)
        for _ in range(500):
            opt.zero_grad()
            param.grad += param.data - target
            opt.step()
        assert np.allclose(param.data, target, atol=1e-3)

    def test_step_counter(self):
        param, _ = quadratic_problem()
        opt = Adam([param], lr=0.01)
        assert opt.t == 0
        param.grad += 1.0
        opt.step()
        assert opt.t == 1

    def test_first_step_magnitude_close_to_lr(self):
        # With bias correction, the very first Adam update is ~lr regardless of
        # gradient magnitude.
        param = Parameter(np.zeros(3))
        opt = Adam([param], lr=0.01)
        param.grad += np.array([100.0, 0.5, 1e-3])
        opt.step()
        assert np.allclose(np.abs(param.data), 0.01, rtol=1e-2)

    def test_weight_decay_shrinks_params(self):
        param = Parameter(np.full(3, 5.0))
        opt = Adam([param], lr=0.1, weight_decay=0.1)
        for _ in range(300):
            opt.zero_grad()
            opt.step()
        assert np.all(np.abs(param.data) < 1.0)

    def test_trains_a_network_to_fit_data(self, rng):
        net = MLP(2, [16], 1, rng=rng)
        opt = Adam(net.parameters(), lr=1e-2)
        x = rng.uniform(-1, 1, size=(64, 2))
        y = (x[:, :1] * 2 - x[:, 1:] * 0.5) + 0.3
        first_loss = None
        for step in range(300):
            opt.zero_grad()
            pred = net.forward(x)
            loss = float(np.mean((pred - y) ** 2))
            if first_loss is None:
                first_loss = loss
            net.backward(2 * (pred - y) / len(x))
            opt.step()
        assert loss < first_loss * 0.05

    def test_validation(self):
        param = Parameter(np.zeros(2))
        with pytest.raises(ValueError):
            Adam([param], lr=-1)
        with pytest.raises(ValueError):
            Adam([param], lr=0.1, betas=(1.5, 0.9))
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_set_lr(self):
        param = Parameter(np.zeros(2))
        opt = Adam([param], lr=0.1)
        opt.set_lr(0.01)
        assert opt.lr == 0.01
        with pytest.raises(ValueError):
            opt.set_lr(0)


class TestClipGradNorm:
    def test_no_clipping_below_threshold(self):
        p = Parameter(np.zeros(4))
        p.grad += np.array([0.1, 0.1, 0.1, 0.1])
        norm = clip_grad_norm_([p], max_norm=10.0)
        assert np.isclose(norm, 0.2)
        assert np.allclose(p.grad, 0.1)

    def test_clipping_scales_down(self):
        p1, p2 = Parameter(np.zeros(2)), Parameter(np.zeros(2))
        p1.grad += np.array([3.0, 0.0])
        p2.grad += np.array([0.0, 4.0])
        norm = clip_grad_norm_([p1, p2], max_norm=1.0)
        assert np.isclose(norm, 5.0)
        total_after = np.sqrt(np.sum(p1.grad**2) + np.sum(p2.grad**2))
        assert np.isclose(total_after, 1.0, atol=1e-9)
