"""Vectorized PPO rollout collection: equivalence, regression and warnings.

The load-bearing guarantee is that ``n_envs=1`` training is *bit-identical*
to the historical serial implementation: the reference hashes/curve values in
:class:`TestSerialRegression` were produced by the pre-vectorization PPO
(single-env loop, per-step ``forward(obs[None, :])``) and must keep
reproducing exactly.
"""

import numpy as np
import pytest

from repro.gymapi import Env, spaces
from repro.gymapi.vector import SyncVecEnv
from repro.rl.callbacks import TrainingCurveCallback
from repro.rl.ppo import PPO
from repro.rlenv.batched_env import BatchedQCloudEnv
from repro.rlenv.train import train_allocation_policy


class ContinuousTargetEnv(Env):
    """Single-step env: reward is highest when the action matches the obs."""

    def __init__(self, dim=3):
        self.observation_space = spaces.Box(0.0, 1.0, shape=(dim,), dtype=np.float64)
        self.action_space = spaces.Box(0.0, 1.0, shape=(dim,), dtype=np.float64)
        self.dim = dim
        self._obs = None

    def reset(self, *, seed=None, options=None):
        super().reset(seed=seed)
        self._obs = self.np_random.random(self.dim)
        return self._obs.copy(), {}

    def step(self, action):
        action = np.clip(np.asarray(action, dtype=np.float64), 0.0, 1.0)
        reward = 1.0 - float(np.mean(np.abs(action - self._obs)))
        return self._obs.copy(), reward, True, False, {}


class TestConstruction:
    def test_uneven_minibatch_warns(self):
        with pytest.warns(UserWarning, match="not a multiple of batch_size"):
            PPO("MlpPolicy", ContinuousTargetEnv(), n_steps=100, batch_size=64, seed=0)

    def test_even_minibatch_does_not_warn(self, recwarn):
        PPO("MlpPolicy", ContinuousTargetEnv(), n_steps=128, batch_size=64, seed=0)
        assert not [w for w in recwarn.list if issubclass(w.category, UserWarning)]

    def test_n_steps_must_divide_by_n_envs(self):
        venv = SyncVecEnv([ContinuousTargetEnv() for _ in range(3)])
        with pytest.raises(ValueError, match="divisible"):
            PPO("MlpPolicy", venv, n_steps=64, batch_size=32, seed=0)

    def test_n_envs_derived_from_vecenv(self):
        venv = SyncVecEnv([ContinuousTargetEnv() for _ in range(4)])
        model = PPO("MlpPolicy", venv, n_steps=64, batch_size=32, seed=0)
        assert model.n_envs == 4
        assert model.rollout_buffer.buffer_size == 16
        assert model.rollout_buffer.n_envs == 4

    def test_scalar_env_wrapped_to_one_env_vector(self):
        model = PPO("MlpPolicy", ContinuousTargetEnv(), n_steps=64, batch_size=32, seed=0)
        assert model.n_envs == 1
        assert isinstance(model.vec_env, SyncVecEnv)


class TestVectorizedLearning:
    def test_vec_env_timestep_accounting(self):
        venv = SyncVecEnv([ContinuousTargetEnv() for _ in range(4)])
        model = PPO("MlpPolicy", venv, n_steps=64, batch_size=32, seed=0)
        model.learn(total_timesteps=128)
        assert model.num_timesteps == 128

    def test_vec_env_reward_improves(self):
        venv = SyncVecEnv([ContinuousTargetEnv() for _ in range(4)])
        model = PPO(
            "MlpPolicy", venv, n_steps=256, batch_size=64, n_epochs=10,
            learning_rate=1e-3, seed=1,
        )
        curve_cb = TrainingCurveCallback()
        model.learn(total_timesteps=256 * 12, callback=curve_cb)
        rewards = [p["ep_rew_mean"] for p in curve_cb.curve]
        assert rewards[-1] > rewards[0] + 0.05
        assert rewards[-1] > 0.75

    def test_one_env_vector_matches_scalar_training_bitwise(self):
        def run(env):
            model = PPO("MlpPolicy", env, n_steps=64, batch_size=32, n_epochs=3, seed=11)
            model.learn(total_timesteps=128)
            return model.policy.parameters_flat

        scalar = run(ContinuousTargetEnv())
        vector = run(SyncVecEnv([ContinuousTargetEnv()]))
        assert np.array_equal(scalar, vector)

    def test_batched_qcloud_env_trains(self, default_fleet):
        venv = BatchedQCloudEnv(n_envs=8, devices=default_fleet, seed=0)
        model = PPO("MlpPolicy", venv, n_steps=128, batch_size=64, seed=0)
        curve_cb = TrainingCurveCallback()
        model.learn(total_timesteps=256, callback=curve_cb)
        assert model.num_timesteps == 256
        assert len(curve_cb.curve) == 2
        # mean single-step reward is a mean device fidelity, so in (0, 1]
        assert 0.0 < curve_cb.curve[-1]["ep_rew_mean"] <= 1.0

    def test_train_allocation_policy_n_envs_smoke(self, default_fleet):
        model, curve = train_allocation_policy(
            total_timesteps=256, n_steps=128, batch_size=64, seed=0,
            n_envs=8, devices=default_fleet,
        )
        assert model.n_envs == 8
        assert isinstance(model.vec_env, BatchedQCloudEnv)
        assert len(curve) == 2

    def test_train_allocation_policy_rejects_bad_n_envs(self):
        with pytest.raises(ValueError):
            train_allocation_policy(total_timesteps=64, n_envs=0)


class TestSerialRegression:
    """``n_envs=1`` must stay bit-identical to the pre-vectorization PPO.

    Reference values were produced by the original serial implementation
    (commit d2146de) with identical arguments; any RNG-stream, arithmetic
    or ordering change in the rollout path will shift them wildly.
    """

    def test_qcloud_training_curve_is_bit_identical(self, default_fleet):
        model, curve = train_allocation_policy(
            total_timesteps=256, n_steps=128, batch_size=64, seed=0,
            devices=default_fleet,
        )
        rewards = [p["ep_rew_mean"] for p in curve]
        entropy = [p["entropy_loss"] for p in curve]
        assert rewards == pytest.approx(
            [0.7994111906856756, 0.8003448108094423], rel=1e-12, abs=0.0
        )
        assert entropy == pytest.approx(
            [-7.089698730551936, -7.087089707812663], rel=1e-12, abs=0.0
        )
        assert model.policy.parameters_flat[:4] == pytest.approx(
            [0.024695378708464825, -0.02872840868193092,
             0.12296252929789644, 0.01750972153690626],
            rel=1e-12, abs=0.0,
        )

    def test_fixed_utilization_training_curve_is_bit_identical(self, default_fleet):
        _model, curve = train_allocation_policy(
            total_timesteps=128, n_steps=64, batch_size=32, seed=7,
            devices=default_fleet, env_kwargs={"randomize_utilization": False},
        )
        rewards = [p["ep_rew_mean"] for p in curve]
        assert rewards == pytest.approx(
            [0.7799791118983558, 0.7869439716993463], rel=1e-12, abs=0.0
        )
