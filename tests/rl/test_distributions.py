"""Unit tests for the action distributions (values and analytic gradients)."""

import numpy as np
import pytest
from scipy import stats

from repro.rl.distributions import Categorical, DiagGaussian


class TestDiagGaussian:
    def test_log_prob_matches_scipy(self, rng):
        mean = rng.standard_normal((6, 3))
        log_std = np.array([0.1, -0.5, 0.3])
        dist = DiagGaussian(mean, log_std)
        actions = rng.standard_normal((6, 3))
        expected = stats.norm.logpdf(actions, loc=mean, scale=np.exp(log_std)).sum(axis=1)
        assert np.allclose(dist.log_prob(actions), expected)

    def test_entropy_matches_closed_form(self):
        log_std = np.array([0.0, 0.5, -1.0])
        dist = DiagGaussian(np.zeros((2, 3)), log_std)
        expected = np.sum(log_std + 0.5 * np.log(2 * np.pi * np.e))
        assert np.allclose(dist.entropy(), expected)

    def test_unit_gaussian_entropy_is_about_7_for_5_dims(self):
        # The paper's Fig. 5 entropy loss starts near -7: that is exactly the
        # (negative) entropy of a 5-dim unit Gaussian policy at initialisation.
        dist = DiagGaussian(np.zeros((1, 5)), np.zeros(5))
        assert np.isclose(dist.entropy()[0], 7.0947, atol=1e-3)

    def test_sampling_statistics(self, rng):
        mean = np.tile(np.array([1.0, -2.0]), (20000, 1))
        dist = DiagGaussian(mean, np.log([0.5, 2.0]))
        samples = dist.sample(rng)
        assert np.allclose(samples.mean(axis=0), [1.0, -2.0], atol=0.05)
        assert np.allclose(samples.std(axis=0), [0.5, 2.0], atol=0.05)

    def test_mode_is_mean(self):
        mean = np.array([[3.0, 4.0]])
        dist = DiagGaussian(mean, np.zeros(2))
        assert np.allclose(dist.mode(), mean)

    def test_log_prob_grads_match_finite_differences(self, rng):
        mean = rng.standard_normal((4, 3))
        log_std = rng.standard_normal(3) * 0.3
        actions = rng.standard_normal((4, 3))
        dist = DiagGaussian(mean, log_std)
        d_mean, d_log_std = dist.log_prob_grads(actions)

        eps = 1e-6
        for i in range(4):
            for j in range(3):
                mp, mm = mean.copy(), mean.copy()
                mp[i, j] += eps
                mm[i, j] -= eps
                fp = DiagGaussian(mp, log_std).log_prob(actions)[i]
                fm = DiagGaussian(mm, log_std).log_prob(actions)[i]
                assert np.isclose(d_mean[i, j], (fp - fm) / (2 * eps), rtol=1e-4, atol=1e-6)

        for j in range(3):
            lp, lm = log_std.copy(), log_std.copy()
            lp[j] += eps
            lm[j] -= eps
            fp = DiagGaussian(mean, lp).log_prob(actions)
            fm = DiagGaussian(mean, lm).log_prob(actions)
            numeric = (fp - fm) / (2 * eps)
            assert np.allclose(d_log_std[:, j], numeric, rtol=1e-4, atol=1e-6)

    def test_kl_divergence_zero_for_identical(self):
        dist = DiagGaussian(np.ones((3, 2)), np.zeros(2))
        other = DiagGaussian(np.ones((3, 2)), np.zeros(2))
        assert np.allclose(dist.kl_divergence(other), 0.0)

    def test_kl_divergence_positive(self, rng):
        d1 = DiagGaussian(rng.standard_normal((5, 2)), np.zeros(2))
        d2 = DiagGaussian(rng.standard_normal((5, 2)), np.array([0.3, -0.2]))
        assert np.all(d1.kl_divergence(d2) >= 0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            DiagGaussian(np.zeros((2, 3)), np.zeros(2))


class TestCategorical:
    def test_probs_normalised(self, rng):
        dist = Categorical(rng.standard_normal((7, 4)))
        assert np.allclose(dist.probs.sum(axis=1), 1.0)
        assert np.all(dist.probs >= 0)

    def test_log_prob_consistent_with_probs(self, rng):
        dist = Categorical(rng.standard_normal((5, 3)))
        actions = np.array([0, 1, 2, 1, 0])
        expected = np.log(dist.probs[np.arange(5), actions])
        assert np.allclose(dist.log_prob(actions), expected)

    def test_entropy_bounds(self, rng):
        dist = Categorical(rng.standard_normal((10, 6)))
        ent = dist.entropy()
        assert np.all(ent >= 0)
        assert np.all(ent <= np.log(6) + 1e-12)

    def test_uniform_entropy_is_log_n(self):
        dist = Categorical(np.zeros((1, 8)))
        assert np.isclose(dist.entropy()[0], np.log(8))

    def test_sampling_frequencies(self, rng):
        logits = np.log(np.array([[0.7, 0.2, 0.1]]))
        dist = Categorical(np.tile(logits, (20000, 1)))
        samples = dist.sample(rng)
        freqs = np.bincount(samples, minlength=3) / len(samples)
        assert np.allclose(freqs, [0.7, 0.2, 0.1], atol=0.02)

    def test_mode(self):
        dist = Categorical(np.array([[0.1, 5.0, 0.3], [2.0, 0.0, -1.0]]))
        assert list(dist.mode()) == [1, 0]

    def test_log_prob_grad_matches_finite_differences(self, rng):
        logits = rng.standard_normal((3, 4))
        actions = np.array([1, 3, 0])
        grad = Categorical(logits).log_prob_grad_logits(actions)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                lp, lm = logits.copy(), logits.copy()
                lp[i, j] += eps
                lm[i, j] -= eps
                fp = Categorical(lp).log_prob(actions)[i]
                fm = Categorical(lm).log_prob(actions)[i]
                assert np.isclose(grad[i, j], (fp - fm) / (2 * eps), rtol=1e-4, atol=1e-6)

    def test_entropy_grad_matches_finite_differences(self, rng):
        logits = rng.standard_normal((2, 5))
        grad = Categorical(logits).entropy_grad_logits()
        eps = 1e-6
        for i in range(2):
            for j in range(5):
                lp, lm = logits.copy(), logits.copy()
                lp[i, j] += eps
                lm[i, j] -= eps
                fp = Categorical(lp).entropy()[i]
                fm = Categorical(lm).entropy()[i]
                assert np.isclose(grad[i, j], (fp - fm) / (2 * eps), rtol=1e-4, atol=1e-6)
