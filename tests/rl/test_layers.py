"""Unit tests for the neural-network layers, including finite-difference gradient checks."""

import numpy as np
import pytest

from repro.rl.nn import MLP, Adam, Identity, Linear, Module, Parameter, ReLU, Sequential, Tanh
from repro.rl.nn.init import constant_, orthogonal_, xavier_uniform_


def numerical_gradient(f, x, eps=1e-6):
    """Central-difference gradient of a scalar function f at x (flattened)."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


class TestInit:
    def test_orthogonal_rows_orthonormal(self, rng):
        w = orthogonal_((8, 4), gain=1.0, rng=rng)
        gram = w.T @ w
        assert np.allclose(gram, np.eye(4), atol=1e-8)

    def test_orthogonal_gain_scales(self, rng):
        w = orthogonal_((6, 6), gain=2.0, rng=rng)
        assert np.allclose(w @ w.T, 4.0 * np.eye(6), atol=1e-8)

    def test_orthogonal_wide_matrix(self, rng):
        w = orthogonal_((3, 7), gain=1.0, rng=rng)
        assert np.allclose(w @ w.T, np.eye(3), atol=1e-8)

    def test_xavier_bounds(self, rng):
        w = xavier_uniform_((20, 30), rng=rng)
        limit = np.sqrt(6.0 / 50)
        assert np.all(np.abs(w) <= limit + 1e-12)

    def test_constant(self):
        assert np.all(constant_((3, 2), 1.5) == 1.5)

    def test_orthogonal_rejects_non_2d(self):
        with pytest.raises(ValueError):
            orthogonal_((3,))


class TestParameterAndModule:
    def test_parameter_grad_starts_zero(self):
        p = Parameter(np.ones((2, 2)))
        assert np.all(p.grad == 0)
        p.grad += 1.0
        p.zero_grad()
        assert np.all(p.grad == 0)

    def test_module_collects_parameters_recursively(self):
        net = Sequential(Linear(3, 4), Tanh(), Linear(4, 2))
        params = net.parameters()
        assert len(params) == 4  # two weights + two biases
        assert net.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2

    def test_state_dict_roundtrip(self, rng):
        net = MLP(3, [5], 2, rng=rng)
        other = MLP(3, [5], 2, rng=np.random.default_rng(999))
        x = rng.standard_normal((4, 3))
        assert not np.allclose(net.forward(x), other.forward(x))
        other.load_state_dict(net.state_dict())
        assert np.allclose(net.forward(x), other.forward(x))

    def test_load_state_dict_shape_mismatch(self, rng):
        net = MLP(3, [5], 2, rng=rng)
        wrong = MLP(3, [6], 2, rng=rng)
        with pytest.raises((ValueError, KeyError)):
            net.load_state_dict(wrong.state_dict())


class TestForwardShapes:
    def test_linear_shapes(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer.forward(rng.standard_normal((7, 4)))
        assert out.shape == (7, 3)

    def test_single_sample_promoted_to_batch(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer.forward(rng.standard_normal(4))
        assert out.shape == (1, 3)

    def test_activations(self):
        x = np.array([[-2.0, 0.0, 2.0]])
        assert np.allclose(Tanh().forward(x), np.tanh(x))
        assert np.allclose(ReLU().forward(x), [[0.0, 0.0, 2.0]])
        assert np.allclose(Identity().forward(x), x)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Linear(2, 2).backward(np.ones((1, 2)))
        with pytest.raises(RuntimeError):
            Tanh().backward(np.ones((1, 2)))

    def test_mlp_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP(2, [4], 1, activation="gelu")


class TestGradients:
    @pytest.mark.parametrize("activation", ["tanh", "relu"])
    def test_mlp_parameter_gradients_match_finite_differences(self, activation, rng):
        net = MLP(3, [6, 5], 2, activation=activation, rng=rng)
        x = rng.standard_normal((8, 3))
        target = rng.standard_normal((8, 2))

        def loss_value():
            out = net.forward(x)
            return 0.5 * float(np.sum((out - target) ** 2))

        # Analytic gradients.
        net.zero_grad()
        out = net.forward(x)
        net.backward(out - target)

        for param in net.parameters():
            numeric = numerical_gradient(loss_value, param.data)
            assert np.allclose(param.grad, numeric, rtol=1e-4, atol=1e-6), param.name

    def test_input_gradient_matches_finite_differences(self, rng):
        net = MLP(4, [5], 3, rng=rng)
        x = rng.standard_normal((2, 4))
        target = rng.standard_normal((2, 3))

        net.zero_grad()
        out = net.forward(x)
        grad_input = net.backward(out - target)

        def loss_at(x_val):
            out = net.forward(x_val)
            return 0.5 * float(np.sum((out - target) ** 2))

        numeric = np.zeros_like(x)
        eps = 1e-6
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                xp = x.copy()
                xp[i, j] += eps
                xm = x.copy()
                xm[i, j] -= eps
                numeric[i, j] = (loss_at(xp) - loss_at(xm)) / (2 * eps)
        assert np.allclose(grad_input, numeric, rtol=1e-4, atol=1e-6)

    def test_gradient_accumulation(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.standard_normal((4, 3))
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        assert np.allclose(layer.weight.grad, 2 * first)


class TestSequentialContainer:
    def test_len_iter_getitem(self, rng):
        net = Sequential(Linear(2, 3, rng=rng), Tanh(), Linear(3, 1, rng=rng))
        assert len(net) == 3
        assert isinstance(net[1], Tanh)
        assert [type(layer).__name__ for layer in net] == ["Linear", "Tanh", "Linear"]
