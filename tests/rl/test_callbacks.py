"""Unit tests for training callbacks (with a stub model)."""

from repro.rl.callbacks import BaseCallback, CallbackList, StopOnRewardCallback, TrainingCurveCallback
from repro.rl.logger import TrainingLogger


class StubModel:
    """Minimal object exposing what the callbacks need from PPO."""

    def __init__(self):
        self.logger = TrainingLogger()
        self.num_timesteps = 0


class TestBaseCallback:
    def test_defaults_do_not_stop_training(self):
        cb = BaseCallback()
        cb.init_callback(StubModel())
        assert cb.on_rollout_end() is True
        assert cb.on_update_end() is True


class TestCallbackList:
    def test_stops_if_any_callback_stops(self):
        class Stopper(BaseCallback):
            def on_update_end(self):
                return False

        cb = CallbackList([BaseCallback(), Stopper()])
        cb.init_callback(StubModel())
        assert cb.on_update_end() is False

    def test_propagates_init(self):
        children = [BaseCallback(), BaseCallback()]
        cb = CallbackList(children)
        model = StubModel()
        cb.init_callback(model)
        assert all(child.model is model for child in children)


class TestTrainingCurveCallback:
    def test_collects_metrics_per_update(self):
        model = StubModel()
        cb = TrainingCurveCallback()
        cb.init_callback(model)

        model.num_timesteps = 2048
        model.logger.record("rollout/ep_rew_mean", 0.5, 2048)
        model.logger.record("train/entropy_loss", -7.0, 2048)
        model.logger.record("train/value_loss", 0.1, 2048)
        cb.on_update_end()

        model.num_timesteps = 4096
        model.logger.record("rollout/ep_rew_mean", 0.6, 4096)
        model.logger.record("train/entropy_loss", -6.0, 4096)
        cb.on_update_end()

        assert len(cb.curve) == 2
        assert cb.curve[0]["timesteps"] == 2048
        assert cb.curve[0]["ep_rew_mean"] == 0.5
        assert cb.curve[1]["entropy_loss"] == -6.0


class TestStopOnReward:
    def test_stops_when_threshold_reached(self):
        model = StubModel()
        cb = StopOnRewardCallback(0.7)
        cb.init_callback(model)

        model.num_timesteps = 100
        model.logger.record("rollout/ep_rew_mean", 0.5, 100)
        assert cb.on_update_end() is True
        assert cb.triggered_at is None

        model.num_timesteps = 200
        model.logger.record("rollout/ep_rew_mean", 0.75, 200)
        assert cb.on_update_end() is False
        assert cb.triggered_at == 200
