"""Unit tests for the rollout buffer and GAE computation."""

import numpy as np
import pytest

from repro.rl.buffers import RolloutBuffer


def reference_gae(rewards, values, episode_starts, last_value, done, gamma, lam):
    """Brute-force GAE reference implementation."""
    n = len(rewards)
    advantages = np.zeros(n)
    last_gae = 0.0
    for t in reversed(range(n)):
        if t == n - 1:
            non_terminal = 1.0 - float(done)
            next_value = last_value
        else:
            non_terminal = 1.0 - episode_starts[t + 1]
            next_value = values[t + 1]
        delta = rewards[t] + gamma * next_value * non_terminal - values[t]
        last_gae = delta + gamma * lam * non_terminal * last_gae
        advantages[t] = last_gae
    return advantages


def fill_buffer(buffer, rng, episode_length=None):
    for i in range(buffer.buffer_size):
        episode_start = (i % episode_length == 0) if episode_length else (i == 0)
        buffer.add(
            obs=rng.standard_normal(buffer.obs_dim),
            action=rng.standard_normal(buffer.action_dim),
            reward=float(rng.normal()),
            episode_start=episode_start,
            value=float(rng.normal()),
            log_prob=float(rng.normal()),
        )


class TestValidation:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            RolloutBuffer(0, 2, 1)
        with pytest.raises(ValueError):
            RolloutBuffer(4, 2, 1, gamma=1.5)
        with pytest.raises(ValueError):
            RolloutBuffer(4, 2, 1, gae_lambda=-0.1)

    def test_add_beyond_capacity_raises(self, rng):
        buffer = RolloutBuffer(2, 3, 1)
        fill_buffer(buffer, rng)
        with pytest.raises(RuntimeError):
            buffer.add(np.zeros(3), np.zeros(1), 0.0, False, 0.0, 0.0)

    def test_get_before_full_raises(self):
        buffer = RolloutBuffer(4, 2, 1)
        with pytest.raises(RuntimeError):
            list(buffer.get(2))
        with pytest.raises(RuntimeError):
            buffer.compute_returns_and_advantage(0.0, False)


class TestGAE:
    @pytest.mark.parametrize("gamma,lam", [(0.99, 0.95), (0.9, 1.0), (1.0, 0.5), (0.5, 0.0)])
    def test_matches_reference(self, gamma, lam, rng):
        buffer = RolloutBuffer(32, 4, 2, gamma=gamma, gae_lambda=lam)
        fill_buffer(buffer, rng, episode_length=8)
        last_value, done = 0.37, False
        buffer.compute_returns_and_advantage(last_value, done)
        expected = reference_gae(
            buffer.rewards, buffer.values, buffer.episode_starts, last_value, done, gamma, lam
        )
        assert np.allclose(buffer.advantages, expected)
        assert np.allclose(buffer.returns, expected + buffer.values)

    def test_single_step_episodes_are_montecarlo(self, rng):
        # With every step starting a new episode (the paper's single-step MDP),
        # the advantage reduces to reward - value and the return to the reward.
        buffer = RolloutBuffer(16, 3, 2, gamma=0.99, gae_lambda=0.95)
        for i in range(16):
            buffer.add(
                obs=rng.standard_normal(3),
                action=rng.standard_normal(2),
                reward=float(i),
                episode_start=True,
                value=0.5,
                log_prob=0.0,
            )
        buffer.compute_returns_and_advantage(last_value=10.0, done=True)
        assert np.allclose(buffer.returns, np.arange(16, dtype=float))
        assert np.allclose(buffer.advantages, np.arange(16, dtype=float) - 0.5)

    def test_gae_lambda_zero_is_td_error(self, rng):
        buffer = RolloutBuffer(8, 2, 1, gamma=0.9, gae_lambda=0.0)
        fill_buffer(buffer, rng)
        buffer.compute_returns_and_advantage(0.2, False)
        rewards, values = buffer.rewards, buffer.values
        next_values = np.append(values[1:], 0.2)
        deltas = rewards + 0.9 * next_values - values
        assert np.allclose(buffer.advantages, deltas)


class TestMinibatches:
    def test_batches_cover_everything_once(self, rng):
        buffer = RolloutBuffer(64, 3, 2)
        fill_buffer(buffer, rng)
        buffer.compute_returns_and_advantage(0.0, True)
        seen = []
        for batch in buffer.get(16, rng=np.random.default_rng(0)):
            assert batch["observations"].shape == (16, 3)
            seen.append(batch["observations"])
        stacked = np.concatenate(seen)
        assert stacked.shape == (64, 3)
        # Every original observation appears exactly once.
        original = buffer.observations[np.lexsort(buffer.observations.T)]
        shuffled = stacked[np.lexsort(stacked.T)]
        assert np.allclose(original, shuffled)

    def test_batch_size_larger_than_buffer(self, rng):
        buffer = RolloutBuffer(8, 2, 1)
        fill_buffer(buffer, rng)
        buffer.compute_returns_and_advantage(0.0, True)
        batches = list(buffer.get(1000))
        assert len(batches) == 1
        assert batches[0]["observations"].shape == (8, 2)

    def test_reset_clears_position(self, rng):
        buffer = RolloutBuffer(4, 2, 1)
        fill_buffer(buffer, rng)
        assert len(buffer) == 4
        buffer.reset()
        assert len(buffer) == 0
        assert not buffer.full


class TestExplainedVariance:
    def test_perfect_predictions(self, rng):
        buffer = RolloutBuffer(8, 2, 1, gamma=0.0, gae_lambda=0.0)
        for i in range(8):
            buffer.add(np.zeros(2), np.zeros(1), float(i), True, float(i), 0.0)
        buffer.compute_returns_and_advantage(0.0, True)
        assert np.isclose(buffer.explained_variance(), 1.0)

    def test_constant_returns_gives_nan(self, rng):
        buffer = RolloutBuffer(4, 2, 1, gamma=0.0)
        for _ in range(4):
            buffer.add(np.zeros(2), np.zeros(1), 1.0, True, 0.3, 0.0)
        buffer.compute_returns_and_advantage(0.0, True)
        assert np.isnan(buffer.explained_variance())


class TestMultiEnvBuffer:
    """Batch-axis (n_envs > 1) storage, GAE and flattening."""

    def fill_vec(self, buffer, rng):
        for _ in range(buffer.buffer_size):
            buffer.add(
                obs=rng.standard_normal((buffer.n_envs, buffer.obs_dim)),
                action=rng.standard_normal((buffer.n_envs, buffer.action_dim)),
                reward=rng.normal(size=buffer.n_envs),
                episode_start=rng.random(buffer.n_envs) < 0.5,
                value=rng.normal(size=buffer.n_envs),
                log_prob=rng.normal(size=buffer.n_envs),
            )

    def test_invalid_n_envs(self):
        with pytest.raises(ValueError):
            RolloutBuffer(4, 2, 1, n_envs=0)

    def test_shapes_grow_batch_axis(self, rng):
        buffer = RolloutBuffer(8, 3, 2, n_envs=4)
        assert buffer.observations.shape == (8, 4, 3)
        assert buffer.rewards.shape == (8, 4)
        assert buffer.total_transitions == 32
        self.fill_vec(buffer, rng)
        assert len(buffer) == 32

    def test_gae_matches_per_env_reference(self, rng):
        n_envs, n = 3, 16
        buffer = RolloutBuffer(n, 2, 1, gamma=0.99, gae_lambda=0.95, n_envs=n_envs)
        self.fill_vec(buffer, rng)
        last_values = rng.normal(size=n_envs)
        dones = np.array([True, False, True])
        buffer.compute_returns_and_advantage(last_values, dones)
        for e in range(n_envs):
            expected = reference_gae(
                buffer.rewards[:, e], buffer.values[:, e], buffer.episode_starts[:, e],
                last_values[e], dones[e], 0.99, 0.95,
            )
            assert np.allclose(buffer.advantages[:, e], expected)

    def test_vec_gae_matches_single_env_buffers(self, rng):
        """A (n, B) buffer computes the same GAE as B separate (n,) buffers."""
        n, n_envs = 8, 4
        vec = RolloutBuffer(n, 2, 1, n_envs=n_envs)
        singles = [RolloutBuffer(n, 2, 1) for _ in range(n_envs)]
        data = rng.standard_normal((n, n_envs, 6))
        starts = rng.random((n, n_envs)) < 0.3
        for t in range(n):
            vec.add(data[t, :, :2], data[t, :, 2:3], data[t, :, 3], starts[t],
                    data[t, :, 4], data[t, :, 5])
            for e in range(n_envs):
                singles[e].add(data[t, e, :2], data[t, e, 2:3], float(data[t, e, 3]),
                               bool(starts[t, e]), float(data[t, e, 4]), float(data[t, e, 5]))
        last_values = rng.normal(size=n_envs)
        vec.compute_returns_and_advantage(last_values, np.zeros(n_envs, dtype=bool))
        for e in range(n_envs):
            singles[e].compute_returns_and_advantage(float(last_values[e]), False)
            assert np.array_equal(vec.advantages[:, e], singles[e].advantages)
            assert np.array_equal(vec.returns[:, e], singles[e].returns)

    def test_minibatches_cover_flattened_transitions(self, rng):
        buffer = RolloutBuffer(8, 3, 2, n_envs=4)
        self.fill_vec(buffer, rng)
        buffer.compute_returns_and_advantage(np.zeros(4), np.ones(4, dtype=bool))
        seen = []
        for batch in buffer.get(16, rng=np.random.default_rng(0)):
            assert batch["observations"].shape == (16, 3)
            assert batch["actions"].shape == (16, 2)
            seen.append(batch["observations"])
        stacked = np.concatenate(seen)
        assert stacked.shape == (32, 3)
        flat = buffer.observations.swapaxes(0, 1).reshape(32, 3)
        assert np.allclose(
            flat[np.lexsort(flat.T)], stacked[np.lexsort(stacked.T)]
        )

    def test_scalar_conversions_still_accepted_for_one_env(self, rng):
        # n_envs=1 accepts size-1 arrays (the vectorized PPO path) and floats.
        buffer = RolloutBuffer(2, 2, 1)
        buffer.add(np.zeros((1, 2)), np.zeros((1, 1)), np.array([1.0]),
                   np.array([True]), np.array([0.5]), np.array([0.1]))
        buffer.add(np.zeros(2), np.zeros(1), 2.0, False, 0.6, 0.2)
        assert buffer.rewards.tolist() == [1.0, 2.0]
        assert buffer.episode_starts.tolist() == [1.0, 0.0]
