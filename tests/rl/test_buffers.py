"""Unit tests for the rollout buffer and GAE computation."""

import numpy as np
import pytest

from repro.rl.buffers import RolloutBuffer


def reference_gae(rewards, values, episode_starts, last_value, done, gamma, lam):
    """Brute-force GAE reference implementation."""
    n = len(rewards)
    advantages = np.zeros(n)
    last_gae = 0.0
    for t in reversed(range(n)):
        if t == n - 1:
            non_terminal = 1.0 - float(done)
            next_value = last_value
        else:
            non_terminal = 1.0 - episode_starts[t + 1]
            next_value = values[t + 1]
        delta = rewards[t] + gamma * next_value * non_terminal - values[t]
        last_gae = delta + gamma * lam * non_terminal * last_gae
        advantages[t] = last_gae
    return advantages


def fill_buffer(buffer, rng, episode_length=None):
    for i in range(buffer.buffer_size):
        episode_start = (i % episode_length == 0) if episode_length else (i == 0)
        buffer.add(
            obs=rng.standard_normal(buffer.obs_dim),
            action=rng.standard_normal(buffer.action_dim),
            reward=float(rng.normal()),
            episode_start=episode_start,
            value=float(rng.normal()),
            log_prob=float(rng.normal()),
        )


class TestValidation:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            RolloutBuffer(0, 2, 1)
        with pytest.raises(ValueError):
            RolloutBuffer(4, 2, 1, gamma=1.5)
        with pytest.raises(ValueError):
            RolloutBuffer(4, 2, 1, gae_lambda=-0.1)

    def test_add_beyond_capacity_raises(self, rng):
        buffer = RolloutBuffer(2, 3, 1)
        fill_buffer(buffer, rng)
        with pytest.raises(RuntimeError):
            buffer.add(np.zeros(3), np.zeros(1), 0.0, False, 0.0, 0.0)

    def test_get_before_full_raises(self):
        buffer = RolloutBuffer(4, 2, 1)
        with pytest.raises(RuntimeError):
            list(buffer.get(2))
        with pytest.raises(RuntimeError):
            buffer.compute_returns_and_advantage(0.0, False)


class TestGAE:
    @pytest.mark.parametrize("gamma,lam", [(0.99, 0.95), (0.9, 1.0), (1.0, 0.5), (0.5, 0.0)])
    def test_matches_reference(self, gamma, lam, rng):
        buffer = RolloutBuffer(32, 4, 2, gamma=gamma, gae_lambda=lam)
        fill_buffer(buffer, rng, episode_length=8)
        last_value, done = 0.37, False
        buffer.compute_returns_and_advantage(last_value, done)
        expected = reference_gae(
            buffer.rewards, buffer.values, buffer.episode_starts, last_value, done, gamma, lam
        )
        assert np.allclose(buffer.advantages, expected)
        assert np.allclose(buffer.returns, expected + buffer.values)

    def test_single_step_episodes_are_montecarlo(self, rng):
        # With every step starting a new episode (the paper's single-step MDP),
        # the advantage reduces to reward - value and the return to the reward.
        buffer = RolloutBuffer(16, 3, 2, gamma=0.99, gae_lambda=0.95)
        for i in range(16):
            buffer.add(
                obs=rng.standard_normal(3),
                action=rng.standard_normal(2),
                reward=float(i),
                episode_start=True,
                value=0.5,
                log_prob=0.0,
            )
        buffer.compute_returns_and_advantage(last_value=10.0, done=True)
        assert np.allclose(buffer.returns, np.arange(16, dtype=float))
        assert np.allclose(buffer.advantages, np.arange(16, dtype=float) - 0.5)

    def test_gae_lambda_zero_is_td_error(self, rng):
        buffer = RolloutBuffer(8, 2, 1, gamma=0.9, gae_lambda=0.0)
        fill_buffer(buffer, rng)
        buffer.compute_returns_and_advantage(0.2, False)
        rewards, values = buffer.rewards, buffer.values
        next_values = np.append(values[1:], 0.2)
        deltas = rewards + 0.9 * next_values - values
        assert np.allclose(buffer.advantages, deltas)


class TestMinibatches:
    def test_batches_cover_everything_once(self, rng):
        buffer = RolloutBuffer(64, 3, 2)
        fill_buffer(buffer, rng)
        buffer.compute_returns_and_advantage(0.0, True)
        seen = []
        for batch in buffer.get(16, rng=np.random.default_rng(0)):
            assert batch["observations"].shape == (16, 3)
            seen.append(batch["observations"])
        stacked = np.concatenate(seen)
        assert stacked.shape == (64, 3)
        # Every original observation appears exactly once.
        original = buffer.observations[np.lexsort(buffer.observations.T)]
        shuffled = stacked[np.lexsort(stacked.T)]
        assert np.allclose(original, shuffled)

    def test_batch_size_larger_than_buffer(self, rng):
        buffer = RolloutBuffer(8, 2, 1)
        fill_buffer(buffer, rng)
        buffer.compute_returns_and_advantage(0.0, True)
        batches = list(buffer.get(1000))
        assert len(batches) == 1
        assert batches[0]["observations"].shape == (8, 2)

    def test_reset_clears_position(self, rng):
        buffer = RolloutBuffer(4, 2, 1)
        fill_buffer(buffer, rng)
        assert len(buffer) == 4
        buffer.reset()
        assert len(buffer) == 0
        assert not buffer.full


class TestExplainedVariance:
    def test_perfect_predictions(self, rng):
        buffer = RolloutBuffer(8, 2, 1, gamma=0.0, gae_lambda=0.0)
        for i in range(8):
            buffer.add(np.zeros(2), np.zeros(1), float(i), True, float(i), 0.0)
        buffer.compute_returns_and_advantage(0.0, True)
        assert np.isclose(buffer.explained_variance(), 1.0)

    def test_constant_returns_gives_nan(self, rng):
        buffer = RolloutBuffer(4, 2, 1, gamma=0.0)
        for _ in range(4):
            buffer.add(np.zeros(2), np.zeros(1), 1.0, True, 0.3, 0.0)
        buffer.compute_returns_and_advantage(0.0, True)
        assert np.isnan(buffer.explained_variance())
