"""Unit tests for the actor-critic policy."""

import numpy as np
import pytest

from repro.gymapi.spaces import Box, Discrete
from repro.rl.distributions import Categorical, DiagGaussian
from repro.rl.policies import ActorCriticPolicy


@pytest.fixture
def continuous_policy():
    obs_space = Box(low=0.0, high=np.inf, shape=(16,), dtype=np.float64)
    act_space = Box(low=0.0, high=1.0, shape=(5,), dtype=np.float64)
    return ActorCriticPolicy(obs_space, act_space, seed=0)


@pytest.fixture
def discrete_policy():
    obs_space = Box(low=-1.0, high=1.0, shape=(4,), dtype=np.float64)
    return ActorCriticPolicy(obs_space, Discrete(3), seed=0)


class TestConstruction:
    def test_requires_box_observation(self):
        with pytest.raises(TypeError):
            ActorCriticPolicy(Discrete(4), Discrete(2))

    def test_continuous_has_log_std(self, continuous_policy):
        assert continuous_policy.is_continuous
        assert continuous_policy.log_std.data.shape == (5,)
        assert np.all(continuous_policy.log_std.data == 0.0)

    def test_discrete_has_no_log_std(self, discrete_policy):
        assert not discrete_policy.is_continuous
        assert discrete_policy.log_std is None

    def test_parameter_count(self, continuous_policy):
        # pi: 16*64+64 + 64*64+64 + 64*5+5 ; vf: 16*64+64 + 64*64+64 + 64*1+1 ; log_std: 5
        expected_pi = 16 * 64 + 64 + 64 * 64 + 64 + 64 * 5 + 5
        expected_vf = 16 * 64 + 64 + 64 * 64 + 64 + 64 * 1 + 1
        assert continuous_policy.num_parameters() == expected_pi + expected_vf + 5

    def test_custom_architecture(self):
        policy = ActorCriticPolicy(
            Box(0, 1, shape=(3,)), Box(0, 1, shape=(2,)), net_arch=(8,), seed=1
        )
        assert policy.net_arch == (8,)


class TestForward:
    def test_distribution_types(self, continuous_policy, discrete_policy, rng):
        obs = rng.random((4, 16))
        assert isinstance(continuous_policy.distribution(obs), DiagGaussian)
        assert isinstance(discrete_policy.distribution(rng.random((4, 4))), Categorical)

    def test_forward_shapes(self, continuous_policy, rng):
        obs = rng.random((6, 16))
        actions, values, log_probs = continuous_policy.forward(obs)
        assert actions.shape == (6, 5)
        assert values.shape == (6,)
        assert log_probs.shape == (6,)

    def test_deterministic_forward_returns_mean(self, continuous_policy, rng):
        obs = rng.random((3, 16))
        a1, _, _ = continuous_policy.forward(obs, deterministic=True)
        a2, _, _ = continuous_policy.forward(obs, deterministic=True)
        assert np.allclose(a1, a2)

    def test_stochastic_forward_varies(self, continuous_policy, rng):
        obs = rng.random((3, 16))
        a1, _, _ = continuous_policy.forward(obs)
        a2, _, _ = continuous_policy.forward(obs)
        assert not np.allclose(a1, a2)

    def test_evaluate_actions_consistency(self, continuous_policy, rng):
        obs = rng.random((5, 16))
        actions, values, log_probs = continuous_policy.forward(obs)
        values2, log_probs2, entropies, dist = continuous_policy.evaluate_actions(obs, actions)
        assert np.allclose(values, values2)
        assert np.allclose(log_probs, log_probs2)
        assert entropies.shape == (5,)

    def test_seeded_policies_identical(self):
        obs_space = Box(0, 1, shape=(6,))
        act_space = Box(0, 1, shape=(2,))
        p1 = ActorCriticPolicy(obs_space, act_space, seed=7)
        p2 = ActorCriticPolicy(obs_space, act_space, seed=7)
        obs = np.linspace(0, 1, 6)[None, :]
        assert np.allclose(p1.distribution(obs).mean, p2.distribution(obs).mean)
        assert np.allclose(p1.value(obs), p2.value(obs))


class TestPredict:
    def test_single_observation(self, continuous_policy, rng):
        action, info = continuous_policy.predict(rng.random(16))
        assert action.shape == (5,)
        assert "value" in info

    def test_batched_observation(self, continuous_policy, rng):
        actions, _ = continuous_policy.predict(rng.random((7, 16)))
        assert actions.shape == (7, 5)

    def test_actions_clipped_into_space(self, continuous_policy, rng):
        action, _ = continuous_policy.predict(rng.random(16) * 10, deterministic=False)
        assert np.all(action >= 0.0) and np.all(action <= 1.0)

    def test_discrete_predict(self, discrete_policy, rng):
        action, _ = discrete_policy.predict(rng.random(4))
        assert int(action) in (0, 1, 2)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, continuous_policy, rng):
        obs = rng.random((3, 16))
        expected = continuous_policy.distribution(obs).mean
        path = str(tmp_path / "policy.npz")
        continuous_policy.save(path)

        other = ActorCriticPolicy(
            continuous_policy.observation_space, continuous_policy.action_space, seed=999
        )
        assert not np.allclose(other.distribution(obs).mean, expected)
        other.load(path)
        assert np.allclose(other.distribution(obs).mean, expected)
        assert np.allclose(other.value(obs), continuous_policy.value(obs))

    def test_parameters_flat(self, continuous_policy):
        flat = continuous_policy.parameters_flat
        assert flat.ndim == 1
        assert flat.size == continuous_policy.num_parameters()
