"""Test package."""
