"""Unit tests for the training logger."""

import json

import pytest

from repro.rl.logger import TrainingLogger


class TestRecording:
    def test_record_and_query(self):
        logger = TrainingLogger()
        logger.record("loss", 1.0, step=10)
        logger.record("loss", 0.5, step=20)
        assert logger.values("loss") == [1.0, 0.5]
        assert logger.steps("loss") == [10, 20]
        assert logger.latest("loss") == 0.5
        assert logger.history("loss") == [(10, 1.0), (20, 0.5)]

    def test_latest_default(self):
        logger = TrainingLogger()
        assert logger.latest("missing") is None
        assert logger.latest("missing", default=3.0) == 3.0

    def test_record_dict(self):
        logger = TrainingLogger()
        logger.record_dict({"a": 1.0, "b": 2.0}, step=5)
        assert logger.keys == ["a", "b"]
        assert logger.latest("a") == 1.0

    def test_moving_average(self):
        logger = TrainingLogger()
        for i, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            logger.record("x", v, step=i)
        assert logger.moving_average("x", window=2) == [1.0, 1.5, 2.5, 3.5]


class TestExport:
    def test_json_roundtrip(self, tmp_path):
        logger = TrainingLogger()
        logger.record("reward", 0.7, 100)
        logger.record("reward", 0.8, 200)
        path = tmp_path / "history.json"
        logger.save_json(str(path))
        loaded = TrainingLogger.load_json(str(path))
        assert loaded.history("reward") == [(100, 0.7), (200, 0.8)]

    def test_csv_export(self, tmp_path):
        logger = TrainingLogger()
        logger.record("a", 1.0, 1)
        logger.record("b", 2.0, 1)
        logger.record("a", 3.0, 2)
        path = tmp_path / "history.csv"
        logger.save_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "step,a,b"
        assert lines[1].startswith("1,1.0,2.0")
        assert lines[2].startswith("2,3.0,")

    def test_to_dict_is_a_copy(self):
        logger = TrainingLogger()
        logger.record("a", 1.0, 1)
        d = logger.to_dict()
        d["a"].append((2, 2.0))
        assert logger.history("a") == [(1, 1.0)]
