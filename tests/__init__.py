"""Test package."""
