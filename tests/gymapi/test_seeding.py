"""Unit tests for the seeding helper."""

import numpy as np
import pytest

from repro.gymapi.seeding import np_random


class TestNpRandom:
    def test_same_seed_same_stream(self):
        g1, _ = np_random(42)
        g2, _ = np_random(42)
        assert np.allclose(g1.random(10), g2.random(10))

    def test_different_seeds_differ(self):
        g1, _ = np_random(1)
        g2, _ = np_random(2)
        assert not np.allclose(g1.random(10), g2.random(10))

    def test_none_seed_gives_entropy(self):
        g1, s1 = np_random(None)
        g2, s2 = np_random(None)
        assert s1 != s2
        assert not np.allclose(g1.random(5), g2.random(5))

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            np_random(-1)

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ValueError):
            np_random(1.5)
