"""Unit tests for the common wrappers and RunningMeanStd."""

import numpy as np
import pytest

from repro.gymapi import Env, spaces
from repro.gymapi.wrappers import (
    ClipAction,
    NormalizeObservation,
    RecordEpisodeStatistics,
    RescaleAction,
    RunningMeanStd,
    TimeLimit,
)


class ContinuousEnv(Env):
    def __init__(self):
        self.observation_space = spaces.Box(-10.0, 10.0, shape=(2,), dtype=np.float64)
        self.action_space = spaces.Box(-1.0, 1.0, shape=(2,), dtype=np.float64)
        self.last_action = None

    def reset(self, *, seed=None, options=None):
        super().reset(seed=seed)
        return np.zeros(2), {}

    def step(self, action):
        self.last_action = np.asarray(action, dtype=np.float64)
        return self.last_action.copy(), float(self.last_action.sum()), False, False, {}


class TestRunningMeanStd:
    def test_matches_numpy_moments(self, rng):
        data = rng.normal(3.0, 2.0, size=(500, 4))
        rms = RunningMeanStd(shape=(4,))
        for chunk in np.array_split(data, 10):
            rms.update(chunk)
        assert np.allclose(rms.mean, data.mean(axis=0), atol=1e-2)
        assert np.allclose(rms.var, data.var(axis=0), atol=5e-2)
        assert np.allclose(rms.std, np.sqrt(rms.var))

    def test_single_sample_updates(self):
        rms = RunningMeanStd(shape=(2,))
        rms.update(np.array([[1.0, 2.0]]))
        rms.update(np.array([[3.0, 4.0]]))
        assert np.allclose(rms.mean, [2.0, 3.0], atol=1e-2)


class TestTimeLimit:
    def test_truncates_after_max_steps(self):
        env = TimeLimit(ContinuousEnv(), max_episode_steps=3)
        env.reset()
        outcomes = [env.step(np.zeros(2))[3] for _ in range(3)]
        assert outcomes == [False, False, True]

    def test_reset_restarts_counter(self):
        env = TimeLimit(ContinuousEnv(), max_episode_steps=2)
        env.reset()
        env.step(np.zeros(2))
        env.reset()
        _, _, _, truncated, _ = env.step(np.zeros(2))
        assert truncated is False

    def test_invalid_max_steps(self):
        with pytest.raises(ValueError):
            TimeLimit(ContinuousEnv(), max_episode_steps=0)


class TestClipAndRescale:
    def test_clip_action(self):
        env = ClipAction(ContinuousEnv())
        env.reset()
        env.step(np.array([5.0, -5.0]))
        assert np.allclose(env.env.last_action, [1.0, -1.0])

    def test_rescale_action(self):
        env = RescaleAction(ContinuousEnv(), min_action=0.0, max_action=1.0)
        env.reset()
        env.step(np.array([0.0, 1.0]))
        assert np.allclose(env.env.last_action, [-1.0, 1.0])
        assert env.action_space.low.min() == 0.0

    def test_clip_requires_box(self):
        class DiscreteEnv(ContinuousEnv):
            def __init__(self):
                super().__init__()
                self.action_space = spaces.Discrete(2)

        with pytest.raises(TypeError):
            ClipAction(DiscreteEnv())


class TestNormalizeObservation:
    def test_normalised_stream_has_small_mean(self, rng):
        env = NormalizeObservation(ContinuousEnv())
        env.reset(seed=0)
        outs = []
        for _ in range(300):
            obs, *_ = env.step(rng.normal(0.5, 0.1, size=2))
            outs.append(obs)
        outs = np.asarray(outs[50:])
        assert np.all(np.abs(outs.mean(axis=0)) < 0.5)

    def test_freezing_statistics(self):
        env = NormalizeObservation(ContinuousEnv())
        env.reset()
        env.step(np.array([0.3, 0.3]))
        env.update_running_mean = False
        mean_before = env.obs_rms.mean.copy()
        env.step(np.array([0.9, 0.9]))
        assert np.allclose(env.obs_rms.mean, mean_before)


class TestRecordEpisodeStatistics:
    def test_episode_info_on_termination(self):
        class ShortEnv(ContinuousEnv):
            def __init__(self):
                super().__init__()
                self.count = 0

            def step(self, action):
                self.count += 1
                return np.zeros(2), 1.0, self.count >= 4, False, {}

        env = RecordEpisodeStatistics(ShortEnv())
        env.reset()
        infos = [env.step(np.zeros(2))[4] for _ in range(4)]
        assert "episode" not in infos[0]
        assert infos[-1]["episode"] == {"r": 4.0, "l": 4}
        assert list(env.return_queue) == [4.0]
