"""Test package."""
