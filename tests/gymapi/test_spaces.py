"""Unit tests for the Gymnasium-style spaces."""

import numpy as np
import pytest

from repro.gymapi import spaces


class TestBox:
    def test_shape_from_scalars(self):
        box = spaces.Box(low=0.0, high=1.0, shape=(5,))
        assert box.shape == (5,)
        assert box.low.shape == (5,)
        assert box.high.shape == (5,)

    def test_shape_from_arrays(self):
        box = spaces.Box(low=np.zeros(3), high=np.ones(3))
        assert box.shape == (3,)

    def test_low_must_not_exceed_high(self):
        with pytest.raises(ValueError):
            spaces.Box(low=1.0, high=0.0, shape=(2,))

    def test_sample_within_bounds(self):
        box = spaces.Box(low=-2.0, high=3.0, shape=(10,), seed=0)
        for _ in range(20):
            sample = box.sample()
            assert box.contains(sample)
            assert np.all(sample >= -2.0) and np.all(sample <= 3.0)

    def test_sample_unbounded(self):
        box = spaces.Box(low=-np.inf, high=np.inf, shape=(4,), seed=1)
        sample = box.sample()
        assert sample.shape == (4,)
        assert not box.is_bounded()
        assert box.is_bounded("below") is False

    def test_contains_rejects_wrong_shape_and_out_of_bounds(self):
        box = spaces.Box(low=0.0, high=1.0, shape=(3,))
        assert not box.contains(np.zeros(4))
        assert not box.contains(np.array([0.5, 0.5, 2.0]))

    def test_clip(self):
        box = spaces.Box(low=0.0, high=1.0, shape=(3,))
        clipped = box.clip(np.array([-1.0, 0.5, 7.0]))
        assert np.allclose(clipped, [0.0, 0.5, 1.0])

    def test_seeded_sampling_reproducible(self):
        b1 = spaces.Box(low=0.0, high=1.0, shape=(6,), seed=42)
        b2 = spaces.Box(low=0.0, high=1.0, shape=(6,), seed=42)
        assert np.allclose(b1.sample(), b2.sample())

    def test_equality(self):
        assert spaces.Box(0.0, 1.0, shape=(2,)) == spaces.Box(0.0, 1.0, shape=(2,))
        assert spaces.Box(0.0, 1.0, shape=(2,)) != spaces.Box(0.0, 2.0, shape=(2,))


class TestDiscrete:
    def test_n_positive(self):
        with pytest.raises(ValueError):
            spaces.Discrete(0)

    def test_sample_and_contains(self):
        space = spaces.Discrete(4, seed=0)
        for _ in range(20):
            assert space.contains(space.sample())
        assert space.contains(0) and space.contains(3)
        assert not space.contains(4)
        assert not space.contains(-1)
        assert not space.contains(1.5)

    def test_start_offset(self):
        space = spaces.Discrete(3, start=10)
        assert space.contains(10) and space.contains(12)
        assert not space.contains(2)

    def test_equality(self):
        assert spaces.Discrete(3) == spaces.Discrete(3)
        assert spaces.Discrete(3) != spaces.Discrete(4)


class TestMultiDiscrete:
    def test_nvec_positive(self):
        with pytest.raises(ValueError):
            spaces.MultiDiscrete([3, 0])

    def test_sample_and_contains(self):
        space = spaces.MultiDiscrete([2, 3, 4], seed=0)
        for _ in range(20):
            sample = space.sample()
            assert space.contains(sample)
        assert not space.contains([2, 0, 0])


class TestDictSpace:
    def test_sample_and_contains(self):
        space = spaces.Dict(
            {"obs": spaces.Box(0.0, 1.0, shape=(2,)), "mode": spaces.Discrete(3)}, seed=0
        )
        sample = space.sample()
        assert space.contains(sample)
        assert set(sample.keys()) == {"obs", "mode"}
        assert len(space) == 2
        assert isinstance(space["mode"], spaces.Discrete)


class TestFlatten:
    def test_flatdim(self):
        assert spaces.flatdim(spaces.Box(0, 1, shape=(4,))) == 4
        assert spaces.flatdim(spaces.Discrete(5)) == 5
        assert spaces.flatdim(spaces.MultiDiscrete([2, 3])) == 5

    def test_flatten_box(self):
        flat = spaces.flatten(spaces.Box(0, 1, shape=(2, 2)), np.array([[1, 2], [3, 4]]))
        assert np.allclose(flat, [1, 2, 3, 4])

    def test_flatten_discrete_onehot(self):
        flat = spaces.flatten(spaces.Discrete(4), 2)
        assert np.allclose(flat, [0, 0, 1, 0])

    def test_flatten_multidiscrete_onehot(self):
        flat = spaces.flatten(spaces.MultiDiscrete([2, 3]), [1, 0])
        assert np.allclose(flat, [0, 1, 1, 0, 0])

    def test_flatten_dict(self):
        space = spaces.Dict({"a": spaces.Discrete(2), "b": spaces.Box(0, 1, shape=(2,))})
        flat = spaces.flatten(space, {"a": 1, "b": np.array([0.25, 0.75])})
        assert flat.shape == (4,)
        assert spaces.flatdim(space) == 4
