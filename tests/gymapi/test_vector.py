"""Unit tests for the vectorized environment layer (VecEnv / SyncVecEnv)."""

import numpy as np
import pytest

from repro.gymapi import Env, spaces
from repro.gymapi.vector import SyncVecEnv, VecEnv


class SingleStepEnv(Env):
    """Scalar single-step env: obs is random, reward echoes the action sum."""

    def __init__(self):
        self.observation_space = spaces.Box(0.0, 1.0, shape=(3,), dtype=np.float64)
        self.action_space = spaces.Box(0.0, 1.0, shape=(2,), dtype=np.float64)
        self._obs = None
        self.closed = False

    def reset(self, *, seed=None, options=None):
        super().reset(seed=seed)
        self._obs = self.np_random.random(3)
        return self._obs.copy(), {"tag": "reset"}

    def step(self, action):
        reward = float(np.sum(action))
        return self._obs.copy(), reward, True, False, {"tag": "step"}

    def close(self):
        self.closed = True


class CountdownEnv(Env):
    """Multi-step env terminating after `horizon` steps; obs counts down."""

    def __init__(self, horizon=3):
        self.observation_space = spaces.Box(0.0, np.inf, shape=(1,), dtype=np.float64)
        self.action_space = spaces.Box(0.0, 1.0, shape=(1,), dtype=np.float64)
        self.horizon = horizon
        self._t = 0

    def reset(self, *, seed=None, options=None):
        super().reset(seed=seed)
        self._t = 0
        return np.array([float(self.horizon)]), {}

    def step(self, action):
        self._t += 1
        done = self._t >= self.horizon
        return np.array([float(self.horizon - self._t)]), 1.0, done, False, {}


class TestConstruction:
    def test_requires_at_least_one_env(self):
        with pytest.raises(ValueError):
            SyncVecEnv([])

    def test_accepts_instances_and_factories(self):
        venv = SyncVecEnv([SingleStepEnv(), SingleStepEnv])
        assert venv.num_envs == 2
        assert all(isinstance(e, SingleStepEnv) for e in venv.envs)

    def test_single_env_spaces_exposed(self):
        venv = SyncVecEnv([SingleStepEnv() for _ in range(4)])
        assert venv.observation_space.shape == (3,)
        assert venv.action_space.shape == (2,)

    def test_mismatched_observation_shapes_rejected(self):
        with pytest.raises(ValueError):
            SyncVecEnv([SingleStepEnv(), CountdownEnv()])

    def test_is_vecenv(self):
        assert isinstance(SyncVecEnv([SingleStepEnv()]), VecEnv)


class TestReset:
    def test_batched_observation_shape(self):
        venv = SyncVecEnv([SingleStepEnv() for _ in range(5)])
        obs, infos = venv.reset(seed=0)
        assert obs.shape == (5, 3)
        assert len(infos) == 5
        assert all(info["tag"] == "reset" for info in infos)

    def test_integer_seed_spreads_per_env(self):
        # Env i is seeded with seed + i, so env 0 matches a scalar env reset
        # with the same seed and distinct envs see distinct streams.
        venv = SyncVecEnv([SingleStepEnv() for _ in range(3)])
        obs, _ = venv.reset(seed=42)
        scalar = SingleStepEnv()
        s_obs, _ = scalar.reset(seed=42)
        assert np.array_equal(obs[0], s_obs)
        assert not np.array_equal(obs[0], obs[1])

    def test_seed_sequence_used_verbatim(self):
        venv = SyncVecEnv([SingleStepEnv() for _ in range(2)])
        obs_a, _ = venv.reset(seed=[7, 7])
        assert np.array_equal(obs_a[0], obs_a[1])

    def test_wrong_number_of_seeds_rejected(self):
        venv = SyncVecEnv([SingleStepEnv() for _ in range(2)])
        with pytest.raises(ValueError):
            venv.reset(seed=[1, 2, 3])

    def test_seeded_reset_reproducible(self):
        v1 = SyncVecEnv([SingleStepEnv() for _ in range(4)])
        v2 = SyncVecEnv([SingleStepEnv() for _ in range(4)])
        o1, _ = v1.reset(seed=9)
        o2, _ = v2.reset(seed=9)
        assert np.array_equal(o1, o2)


class TestStep:
    def test_batched_step_shapes_and_dtypes(self):
        venv = SyncVecEnv([SingleStepEnv() for _ in range(4)])
        venv.reset(seed=0)
        obs, rewards, terminated, truncated, infos = venv.step(np.full((4, 2), 0.5))
        assert obs.shape == (4, 3)
        assert rewards.shape == (4,) and rewards.dtype == np.float64
        assert terminated.shape == (4,) and terminated.dtype == bool
        assert truncated.dtype == bool
        assert np.allclose(rewards, 1.0)
        assert len(infos) == 4

    def test_wrong_leading_dimension_rejected(self):
        venv = SyncVecEnv([SingleStepEnv() for _ in range(4)])
        venv.reset(seed=0)
        with pytest.raises(ValueError):
            venv.step(np.zeros((3, 2)))

    def test_autoreset_returns_next_episode_observation(self):
        venv = SyncVecEnv([SingleStepEnv()])
        first_obs, _ = venv.reset(seed=1)
        obs, _, terminated, _, infos = venv.step(np.zeros((1, 2)))
        assert terminated[0]
        # The terminal observation is preserved in the info...
        assert np.array_equal(infos[0]["final_observation"], first_obs[0])
        assert infos[0]["final_info"]["tag"] == "step"
        # ...while the returned observation belongs to the new episode.
        assert not np.array_equal(obs[0], first_obs[0])

    def test_multi_step_envs_only_reset_when_done(self):
        venv = SyncVecEnv([CountdownEnv(horizon=3)])
        obs, _ = venv.reset()
        assert obs[0, 0] == 3.0
        obs, _, term, _, _ = venv.step(np.zeros((1, 1)))
        assert obs[0, 0] == 2.0 and not term[0]
        obs, _, term, _, _ = venv.step(np.zeros((1, 1)))
        assert obs[0, 0] == 1.0 and not term[0]
        obs, _, term, _, _ = venv.step(np.zeros((1, 1)))
        # Terminal step auto-resets: the observation is the fresh episode's.
        assert term[0] and obs[0, 0] == 3.0

    def test_scalar_env_equivalence_under_fixed_seed(self):
        """A 1-env SyncVecEnv reproduces the scalar env's trajectory exactly."""
        scalar = CountdownEnv(horizon=2)
        s_obs, _ = scalar.reset(seed=5)
        venv = SyncVecEnv([CountdownEnv(horizon=2)])
        v_obs, _ = venv.reset(seed=5)
        assert np.array_equal(v_obs[0], s_obs)
        for _ in range(5):
            action = np.array([[0.3]])
            s_obs, s_r, s_te, s_tr, _ = scalar.step(action[0])
            if s_te or s_tr:
                s_obs, _ = scalar.reset()
            v_obs, v_r, v_te, v_tr, _ = venv.step(action)
            assert np.array_equal(v_obs[0], np.asarray(s_obs))
            assert v_r[0] == s_r
            assert v_te[0] == bool(s_te)


class TestClose:
    def test_close_propagates(self):
        envs = [SingleStepEnv() for _ in range(3)]
        venv = SyncVecEnv(envs)
        venv.close()
        assert all(e.closed for e in envs)

    def test_context_manager_closes(self):
        envs = [SingleStepEnv()]
        with SyncVecEnv(envs):
            pass
        assert envs[0].closed
