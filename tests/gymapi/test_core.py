"""Unit tests for the Env / Wrapper base classes."""

import numpy as np
import pytest

from repro.gymapi import ActionWrapper, Env, ObservationWrapper, RewardWrapper, Wrapper, spaces


class CounterEnv(Env):
    """Tiny deterministic environment used to exercise the API."""

    def __init__(self, horizon: int = 5):
        self.observation_space = spaces.Box(0.0, float(horizon), shape=(1,), dtype=np.float64)
        self.action_space = spaces.Discrete(2)
        self.horizon = horizon
        self.t = 0
        self.closed = False

    def reset(self, *, seed=None, options=None):
        super().reset(seed=seed)
        self.t = 0
        return np.array([0.0]), {"start": True}

    def step(self, action):
        self.t += 1
        reward = float(action)
        terminated = self.t >= self.horizon
        return np.array([float(self.t)]), reward, terminated, False, {}

    def close(self):
        self.closed = True


class TestEnvAPI:
    def test_reset_returns_obs_info(self):
        env = CounterEnv()
        obs, info = env.reset(seed=3)
        assert obs.shape == (1,)
        assert info == {"start": True}

    def test_step_five_tuple(self):
        env = CounterEnv()
        env.reset()
        obs, reward, terminated, truncated, info = env.step(1)
        assert obs[0] == 1.0
        assert reward == 1.0
        assert terminated is False and truncated is False

    def test_np_random_seeding(self):
        env = CounterEnv()
        env.reset(seed=99)
        v1 = env.np_random.random()
        env.reset(seed=99)
        v2 = env.np_random.random()
        assert v1 == v2

    def test_unwrapped_is_self(self):
        env = CounterEnv()
        assert env.unwrapped is env

    def test_context_manager_closes(self):
        env = CounterEnv()
        with env:
            pass
        assert env.closed


class TestWrapper:
    def test_attribute_forwarding(self):
        env = CounterEnv()
        wrapped = Wrapper(env)
        assert wrapped.horizon == 5
        assert wrapped.unwrapped is env
        assert wrapped.observation_space is env.observation_space
        assert wrapped.action_space is env.action_space

    def test_private_attribute_forwarding_blocked(self):
        wrapped = Wrapper(CounterEnv())
        with pytest.raises(AttributeError):
            _ = wrapped._some_private_attribute_of_the_inner_env

    def test_space_override(self):
        wrapped = Wrapper(CounterEnv())
        new_space = spaces.Discrete(7)
        wrapped.action_space = new_space
        assert wrapped.action_space is new_space

    def test_observation_wrapper(self):
        class Doubler(ObservationWrapper):
            def observation(self, observation):
                return observation * 2

        env = Doubler(CounterEnv())
        obs, _ = env.reset()
        assert obs[0] == 0.0
        obs, *_ = env.step(0)
        assert obs[0] == 2.0

    def test_action_wrapper(self):
        class Flip(ActionWrapper):
            def action(self, action):
                return 1 - action

        env = Flip(CounterEnv())
        env.reset()
        _, reward, *_ = env.step(0)
        assert reward == 1.0

    def test_reward_wrapper(self):
        class Scale(RewardWrapper):
            def reward(self, reward):
                return reward * 10

        env = Scale(CounterEnv())
        env.reset()
        _, reward, *_ = env.step(1)
        assert reward == 10.0
