"""Unit tests for the QDevice hierarchy."""

import pytest

from repro.circuits.circuit import CircuitSpec
from repro.cloud.qdevice import BaseQDevice, IBMQuantumDevice, QuantumDevice
from repro.des.environment import Environment
from repro.hardware.backends import get_device_profile
from repro.hardware.coupling import ibm_eagle_coupling
from repro.metrics.timing import processing_time_minutes


@pytest.fixture
def device(env, small_profile):
    return IBMQuantumDevice(env, small_profile)


def fragment(q=5, depth=8, shots=10_000, t2=12):
    return CircuitSpec(num_qubits=q, depth=depth, num_shots=shots, num_two_qubit_gates=t2)


class TestBaseQDevice:
    def test_capacity_accounting(self, env):
        dev = BaseQDevice(env, "dev", 20)
        assert dev.free_qubits == 20
        assert dev.used_qubits == 0
        assert dev.utilization == 0.0

    def test_request_and_release(self, env):
        dev = BaseQDevice(env, "dev", 20)

        def proc(env, dev, log):
            yield dev.request_qubits(15)
            log.append((dev.free_qubits, dev.utilization))
            yield env.timeout(1)
            yield dev.release_qubits(15)
            log.append((dev.free_qubits, dev.utilization))

        log = []
        env.process(proc(env, dev, log))
        env.run()
        assert log == [(5, 0.75), (20, 0.0)]

    def test_request_more_than_capacity_rejected(self, env):
        dev = BaseQDevice(env, "dev", 10)
        with pytest.raises(ValueError):
            dev.request_qubits(11)
        with pytest.raises(ValueError):
            dev.request_qubits(0)

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            BaseQDevice(env, "dev", 0)


class TestQuantumDevice:
    def test_connected_region_check(self, env):
        dev = QuantumDevice(env, "dev", ibm_eagle_coupling(20))
        assert dev.has_connected_region(10)
        assert dev.has_connected_region(20)
        assert not dev.has_connected_region(21)
        with pytest.raises(ValueError):
            dev.has_connected_region(0)


class TestIBMQuantumDevice:
    def test_profile_attributes(self, device, small_profile):
        assert device.name == small_profile.name
        assert device.clops == small_profile.clops
        assert device.num_qubits == 10
        assert device.error_score() == pytest.approx(small_profile.error_score())

    def test_process_time_matches_model(self, device):
        frag = fragment(shots=40_000)
        expected = processing_time_minutes(40_000, device.clops, device.quantum_volume)
        assert device.calculate_process_time(frag) == pytest.approx(expected)

    def test_fidelity_breakdown_components(self, device):
        frag = fragment(q=5, depth=10, t2=30)
        b = device.compute_fidelity_breakdown(frag, num_devices=2, total_qubits=10)
        assert 0 < b.single_qubit <= 1
        assert 0 < b.two_qubit <= 1
        assert 0 < b.readout <= 1
        assert b.device == pytest.approx(b.single_qubit * b.two_qubit * b.readout)
        assert b.device_name == device.name

    def test_execute_advances_clock_and_returns_result(self, env, small_profile):
        device = IBMQuantumDevice(env, small_profile)
        frag = fragment()
        proc = env.process(device.execute(frag, num_devices=1, total_qubits=frag.num_qubits))
        result = env.run(until=proc)
        assert env.now == pytest.approx(device.calculate_process_time(frag))
        assert result.device_name == device.name
        assert result.qubits_allocated == frag.num_qubits
        assert device.completed_subjobs == 1
        assert device.busy_time == pytest.approx(env.now)
        assert device.qubit_seconds == pytest.approx(frag.num_qubits * env.now)

    def test_from_profile_constructor(self, env, small_profile):
        device = IBMQuantumDevice.from_profile(env, small_profile)
        assert isinstance(device, IBMQuantumDevice)
