"""Bit-identity of the fast-path device kernels against the legacy methods.

The flat dispatcher computes durations and fidelities through the scalar and
batch kernels on :class:`~repro.cloud.qdevice.IBMQuantumDevice`; byte
identity of the engines rests on these being *exactly* the legacy
``calculate_process_time`` / ``compute_fidelity_breakdown`` results — same
IEEE operations in the same order, not merely close.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import CircuitSpec
from repro.cloud.qdevice import IBMQuantumDevice
from repro.des.environment import Environment


@pytest.fixture
def device(small_profile):
    return IBMQuantumDevice(Environment(), small_profile)


def _spec(qubits=4, depth=7, shots=500, t2=9):
    return CircuitSpec(num_qubits=qubits, depth=depth, num_shots=shots,
                       num_two_qubit_gates=t2)


class TestProcessTimeKernels:
    SHOTS = [1, 7, 100, 999, 10_000, 100_000, 123_457]

    def test_scalar_matches_legacy_bitwise(self, device):
        for shots in self.SHOTS:
            legacy = device.calculate_process_time(_spec(shots=shots))
            assert device.scalar_process_time(shots) == legacy

    def test_batch_matches_scalar_bitwise(self, device):
        batch = device.batch_process_times(self.SHOTS)
        assert batch.dtype == np.float64
        for shots, value in zip(self.SHOTS, batch):
            assert float(value) == device.scalar_process_time(shots)

    def test_nonpositive_shots_rejected(self, device):
        with pytest.raises(ValueError):
            device.scalar_process_time(0)
        with pytest.raises(ValueError):
            device.batch_process_times([100, 0, 50])

    def test_empty_batch(self, device):
        assert len(device.batch_process_times([])) == 0

    def test_log2_qv_cache_tracks_reassignment(self, device):
        before = device.scalar_process_time(100)
        device.quantum_volume *= 2.0
        after = device.scalar_process_time(100)
        assert after != before
        assert after == device.calculate_process_time(_spec(shots=100))


class TestFidelityKernels:
    CASES = [
        # (qubits, depth, t2, total_qubits, num_devices)
        (4, 7, 9, 4, 1),
        (3, 5, 0, 9, 3),
        (8, 20, 48, 16, 2),
        (1, 1, 0, 5, 5),
    ]

    def test_scalar_matches_legacy_bitwise(self, device):
        for qubits, depth, t2, total, ndev in self.CASES:
            legacy = device.compute_fidelity_breakdown(
                _spec(qubits=qubits, depth=depth, t2=t2),
                num_devices=ndev,
                total_qubits=total,
            )
            fast = device.scalar_fidelity_breakdown(qubits, depth, t2, total, ndev)
            assert fast.device_name == legacy.device_name
            assert fast.qubits_allocated == legacy.qubits_allocated
            assert fast.single_qubit == legacy.single_qubit
            assert fast.two_qubit == legacy.two_qubit
            assert fast.readout == legacy.readout

    def test_batch_matches_scalar_bitwise(self, device):
        qubits, depths, t2s, totals, ndevs = zip(*self.CASES)
        batch = device.batch_fidelity_breakdowns(qubits, depths, t2s, totals, ndevs)
        assert len(batch) == len(self.CASES)
        for got, case in zip(batch, self.CASES):
            want = device.scalar_fidelity_breakdown(*case)
            assert got.qubits_allocated == want.qubits_allocated
            assert got.single_qubit == want.single_qubit
            assert got.two_qubit == want.two_qubit
            assert got.readout == want.readout


class TestDirectQubitArithmetic:
    """reserve/release_qubits_now must mirror the event-based container ops."""

    def test_reserve_then_release_round_trip(self, device):
        free = device.free_qubits
        device.reserve_qubits_now(4)
        assert device.free_qubits == free - 4
        device.release_qubits_now(4)
        assert device.free_qubits == free

    def test_matches_event_based_reservation(self, small_profile):
        env = Environment()
        via_events = IBMQuantumDevice(env, small_profile)
        direct = IBMQuantumDevice(env, small_profile)
        via_events.request_qubits(6)  # Container.get mutates synchronously
        direct.reserve_qubits_now(6)
        assert via_events.free_qubits == direct.free_qubits
        via_events.release_qubits(2)
        env.run()  # put events apply on processing
        direct.release_qubits_now(2)
        assert via_events.free_qubits == direct.free_qubits

    def test_validation(self, device):
        with pytest.raises(ValueError):
            device.reserve_qubits_now(0)
        with pytest.raises(ValueError):
            device.release_qubits_now(-1)
        with pytest.raises(RuntimeError, match="cannot reserve"):
            device.reserve_qubits_now(device.free_qubits + 1)
        with pytest.raises(RuntimeError, match="exceed"):
            device.release_qubits_now(1)  # already at capacity
