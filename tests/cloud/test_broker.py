"""Unit tests for the broker (Algorithm 1) on a small two-device cloud."""

import pytest

from repro.circuits.circuit import CircuitSpec
from repro.cloud.broker import Broker, CustomBroker
from repro.cloud.qcloud import QCloud
from repro.cloud.qjob import QJob, QJobStatus
from repro.cloud.records import JobRecordsManager
from repro.des.environment import Environment
from repro.hardware.backends import get_device_profile
from repro.metrics.fidelity import final_fidelity
from repro.scheduling.error_aware import ErrorAwarePolicy
from repro.scheduling.speed import SpeedPolicy


def small_cloud(env, num_qubits=12):
    profiles = [
        get_device_profile("ibm_strasbourg", num_qubits=num_qubits, quantum_volume=32),
        get_device_profile("ibm_kyiv", num_qubits=num_qubits, quantum_volume=32),
    ]
    return QCloud(env, profiles)


def make_job(job_id=0, q=16, depth=6, shots=5_000, t2=20, arrival=0.0):
    circuit = CircuitSpec(num_qubits=q, depth=depth, num_shots=shots, num_two_qubit_gates=t2)
    return QJob(job_id=job_id, circuit=circuit, arrival_time=arrival)


def build(env, policy=None):
    cloud = small_cloud(env)
    records = JobRecordsManager()
    broker = Broker(env, cloud, policy or SpeedPolicy(), records)
    return cloud, records, broker


class TestValidation:
    def test_policy_must_expose_plan(self, env):
        cloud = small_cloud(env)
        with pytest.raises(TypeError):
            Broker(env, cloud, policy=object(), records=JobRecordsManager())


class TestSingleJob:
    def test_split_job_completes_with_penalised_fidelity(self, env):
        cloud, records, broker = build(env)
        job = make_job(q=16)
        broker.submit(job)
        env.run()

        assert job.status is QJobStatus.COMPLETED
        record = records.record_for(0)
        assert record is not None
        assert record.num_devices == 2
        assert sum(record.allocation) == 16
        assert record.communication_time == pytest.approx(16 * 0.02)
        # Final fidelity equals Eq. (8) applied to the per-device breakdowns.
        expected = final_fidelity([b.device for b in record.breakdowns], phi=0.95)
        assert record.fidelity == pytest.approx(expected)
        assert record.finish_time >= record.start_time >= record.arrival_time

    def test_single_device_job_has_no_communication(self, env):
        cloud, records, broker = build(env)
        job = make_job(q=8)
        broker.submit(job)
        env.run()
        record = records.record_for(0)
        assert record.num_devices == 1
        assert record.communication_time == 0.0

    def test_qubits_released_after_completion(self, env):
        cloud, records, broker = build(env)
        broker.submit(make_job(q=16))
        env.run()
        assert cloud.free_qubits == cloud.total_qubits
        assert cloud.jobs_completed == 1

    def test_oversized_job_fails_gracefully(self, env):
        cloud, records, broker = build(env)
        job = make_job(q=100)
        broker.submit(job)
        env.run()
        assert job.status is QJobStatus.FAILED
        assert broker.failed_jobs == [job]
        assert records.record_for(0) is None
        assert any(e.event == "failed" for e in records.events_for(0))

    def test_events_logged_in_order(self, env):
        cloud, records, broker = build(env)
        records.log_arrival(0, 0.0)
        broker.submit(make_job(q=16))
        env.run()
        names = [e.event for e in records.events_for(0)]
        assert names == ["arrival", "start", "fidelity", "finish"]


class TestContention:
    def test_jobs_queue_when_capacity_exhausted(self, env):
        cloud, records, broker = build(env)
        broker.submit(make_job(job_id=0, q=20))
        broker.submit(make_job(job_id=1, q=20))
        env.run()
        r0, r1 = records.record_for(0), records.record_for(1)
        # The second job cannot start before the first finishes (20 + 20 > 24).
        assert r1.start_time >= r0.finish_time
        assert r1.wait_time > 0

    def test_small_jobs_run_concurrently(self, env):
        cloud, records, broker = build(env)
        broker.submit(make_job(job_id=0, q=8))
        broker.submit(make_job(job_id=1, q=8))
        env.run()
        r0, r1 = records.record_for(0), records.record_for(1)
        assert r0.start_time == r1.start_time == 0.0

    def test_fifo_admission_order(self, env):
        cloud, records, broker = build(env)
        for job_id in range(4):
            broker.submit(make_job(job_id=job_id, q=20))
        env.run()
        starts = [records.record_for(i).start_time for i in range(4)]
        assert starts == sorted(starts)

    def test_makespan_reflects_serialisation(self, env):
        cloud, records, broker = build(env)
        broker.submit(make_job(job_id=0, q=20, shots=5_000))
        broker.submit(make_job(job_id=1, q=20, shots=5_000))
        env.run()
        single = records.record_for(0).finish_time
        total = max(records.record_for(i).finish_time for i in range(2))
        assert total >= 2 * records.record_for(0).processing_time
        assert total >= single


class TestPolicyInteraction:
    def test_error_aware_policy_prefers_low_error_device(self, env):
        cloud, records, broker = build(env, policy=ErrorAwarePolicy())
        broker.submit(make_job(q=8))
        env.run()
        record = records.record_for(0)
        scores = {d.name: d.error_score() for d in cloud.devices}
        best = min(scores, key=scores.get)
        assert record.devices == [best]

    def test_plan_total_mismatch_raises(self, env):
        class BrokenPolicy(SpeedPolicy):
            def plan(self, job, devices):
                plan = super().plan(job, devices)
                # Corrupt the plan by dropping one device's qubits.
                from repro.scheduling.base import AllocationPlan

                return AllocationPlan(allocations=plan.allocations[:1])

        cloud = small_cloud(env)
        broker = Broker(env, cloud, BrokenPolicy(), JobRecordsManager())
        broker.submit(make_job(q=16))
        with pytest.raises(RuntimeError):
            env.run()


class TestCustomBroker:
    def test_custom_broker_is_a_broker(self, env):
        cloud = small_cloud(env)
        broker = CustomBroker(env, cloud, SpeedPolicy(), JobRecordsManager())
        broker.submit(make_job(q=16))
        env.run()
        assert len(broker.records.completed_records) == 1
