"""Unit tests for the job records manager."""

import csv

import pytest

from repro.cloud.records import JobRecord, JobRecordsManager


def make_record(job_id=1, fidelity=0.66):
    return JobRecord(
        job_id=job_id,
        num_qubits=190,
        depth=10,
        num_shots=30_000,
        arrival_time=0.0,
        start_time=5.0,
        finish_time=105.0,
        fidelity=fidelity,
        communication_time=3.8,
        num_devices=2,
        devices=["ibm_kyiv", "ibm_quebec"],
        allocation=[127, 63],
        processing_time=95.0,
    )


class TestJobRecord:
    def test_derived_times(self):
        record = make_record()
        assert record.wait_time == 5.0
        assert record.turnaround_time == 105.0

    def test_as_dict_flattens_lists(self):
        payload = make_record().as_dict()
        assert payload["devices"] == "ibm_kyiv|ibm_quebec"
        assert payload["allocation"] == "127|63"
        assert payload["wait_time"] == 5.0


class TestRecordsManager:
    def test_event_logging_and_query(self):
        mgr = JobRecordsManager()
        mgr.log_arrival(1, 0.0)
        mgr.log_start(1, 2.0, detail="ibm_kyiv")
        mgr.log_fidelity(1, 10.0, 0.7)
        mgr.log_finish(1, 10.0)
        mgr.log_arrival(2, 1.0)
        assert len(mgr.events) == 5
        events_1 = mgr.events_for(1)
        assert [e.event for e in events_1] == ["arrival", "start", "fidelity", "finish"]
        assert events_1[1].detail == "ibm_kyiv"

    def test_unknown_event_rejected(self):
        mgr = JobRecordsManager()
        with pytest.raises(ValueError):
            mgr.log_event(1, "teleported", 0.0)

    def test_records_sorted_and_unique(self):
        mgr = JobRecordsManager()
        mgr.add_record(make_record(job_id=5))
        mgr.add_record(make_record(job_id=2))
        assert [r.job_id for r in mgr.completed_records] == [2, 5]
        assert len(mgr) == 2
        assert mgr.record_for(5).job_id == 5
        assert mgr.record_for(99) is None
        with pytest.raises(ValueError):
            mgr.add_record(make_record(job_id=5))

    def test_records_csv_export(self, tmp_path):
        mgr = JobRecordsManager()
        mgr.add_record(make_record(job_id=1))
        mgr.add_record(make_record(job_id=2, fidelity=0.71))
        path = tmp_path / "records.csv"
        mgr.to_csv(str(path))
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert rows[1]["fidelity"] == "0.71"

    def test_csv_export_empty_writes_header_only(self, tmp_path):
        """A zero-completion run exports the full schema with no data rows."""
        path = tmp_path / "x.csv"
        JobRecordsManager().to_csv(str(path))
        with open(path) as fh:
            reader = csv.reader(fh)
            header = next(reader)
            assert header == list(JobRecord.CSV_FIELDS)
            assert list(reader) == []

    def test_csv_fields_match_as_dict(self):
        assert tuple(make_record().as_dict().keys()) == JobRecord.CSV_FIELDS

    def test_events_csv_export(self, tmp_path):
        mgr = JobRecordsManager()
        mgr.log_arrival(1, 0.0)
        mgr.log_failure(1, 2.0, "too big")
        path = tmp_path / "events.csv"
        mgr.events_to_csv(str(path))
        content = path.read_text()
        assert "arrival" in content and "too big" in content
