"""Byte-identity of the flat-event fast path against the legacy engine.

The fast path's contract (see :mod:`repro.cloud.fastpath`) is that every
eligible configuration reproduces the legacy record and event streams *bit
for bit*.  These tests sweep policies × arrival processes × traffic-only
scenarios comparing the full event log, every completed record and the
failed-job lists, plus the eligibility guards and the :class:`JobTable`
plumbing the dispatcher runs on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import CircuitSpec
from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.cloud.fastpath import JobTable, flat_path_eligible
from repro.cloud.job_generator import generate_synthetic_jobs
from repro.cloud.qjob import QJob


def _run(fast, policy="speed", arrival=None, scenario=None, jobs=None, n=50):
    """One simulation; returns (events, records, failed, fast_path_active)."""
    if jobs is None:
        jobs = generate_synthetic_jobs(
            num_jobs=n,
            seed=11,
            arrival="poisson" if arrival is not None else "batch",
            arrival_rate=arrival if arrival is not None else 0.01,
        )
    env = QCloudSimEnv(
        config=SimulationConfig(policy=policy, fast_path=fast),
        jobs=jobs,
        scenario=scenario,
    )
    env.run()
    events = [(e.job_id, e.event, e.time, e.detail) for e in env.records.events]
    records = [r.as_dict() for r in env.records.completed_records]
    failed = [(j.job_id, j.status.name) for j in env.broker.failed_jobs]
    return events, records, failed, env.fast_path_active


class TestByteIdentity:
    @pytest.mark.parametrize("policy", ["speed", "fidelity", "fair", "balanced"])
    def test_identical_streams(self, policy):
        for arrival in (None, 0.5):
            for scenario in (None, "rush-hour"):
                legacy = _run(False, policy, arrival, scenario)
                fast = _run(True, policy, arrival, scenario)
                assert not legacy[3], (policy, arrival, scenario)
                assert fast[3], (policy, arrival, scenario)
                assert legacy[0] == fast[0], (policy, arrival, scenario, "events")
                assert legacy[1] == fast[1], (policy, arrival, scenario, "records")
                assert legacy[2] == fast[2], (policy, arrival, scenario, "failed")

    def test_capacity_exceeding_job_fails_identically(self):
        # One job wider than the whole fleet exercises the can-ever-fit
        # guard; the giant must fail the same way on both engines while the
        # normal jobs complete.
        jobs = generate_synthetic_jobs(num_jobs=6, seed=3)
        giant = QJob(
            job_id=999,
            circuit=CircuitSpec(num_qubits=100_000, depth=5, num_shots=100,
                                num_two_qubit_gates=10),
            arrival_time=0.0,
        )
        legacy = _run(False, jobs=jobs + [giant])
        fast = _run(True, jobs=jobs + [giant])
        assert fast[3] and not legacy[3]
        assert legacy[:3] == fast[:3]
        assert (999, "FAILED") in fast[2]


class TestEligibility:
    def test_default_is_legacy(self):
        env = QCloudSimEnv(config=SimulationConfig(),
                           jobs=generate_synthetic_jobs(num_jobs=3, seed=1))
        assert not env.fast_path_active

    def test_dynamic_scenario_falls_back(self):
        # flaky-fleet injects outages — world dynamics keep the legacy path.
        # (Engagement is decided at construction; don't run — dynamic
        # scenarios keep scheduling world events, so a bare run() never
        # drains the queue.)
        env = QCloudSimEnv(
            config=SimulationConfig(policy="speed", fast_path=True),
            jobs=generate_synthetic_jobs(num_jobs=5, seed=11),
            scenario="flaky-fleet",
        )
        assert not env.fast_path_active

    def test_tenant_mix_falls_back(self):
        env = QCloudSimEnv(
            config=SimulationConfig(fast_path=True, tenants="free-tier-vs-premium"),
            jobs=generate_synthetic_jobs(num_jobs=5, seed=1),
        )
        env.run()
        assert not env.fast_path_active

    def test_custom_broker_ineligible(self):
        from repro.cloud.broker import Broker

        class CustomBroker(Broker):
            pass

        env = QCloudSimEnv(config=SimulationConfig(),
                           jobs=generate_synthetic_jobs(num_jobs=2, seed=1))
        assert flat_path_eligible(env.broker, None, None)
        custom = CustomBroker.__new__(CustomBroker)
        assert not flat_path_eligible(custom, None, None)

    def test_job_table_requires_eligible_config(self):
        table = JobTable.synthetic(5, seed=1, qubit_range=(2, 8),
                                   depth_range=(5, 10), shots_range=(100, 200))
        with pytest.raises(ValueError, match="fast-path-eligible"):
            QCloudSimEnv(
                config=SimulationConfig(tenants="free-tier-vs-premium"),
                job_table=table,
            )

    def test_job_table_implies_fast_path(self):
        table = JobTable.synthetic(5, seed=1, qubit_range=(2, 8),
                                   depth_range=(5, 10), shots_range=(100, 200))
        env = QCloudSimEnv(config=SimulationConfig(), job_table=table)
        env.run()
        assert env.fast_path_active
        assert len(env.records.completed_records) == 5


class TestJobTable:
    def test_sorted_by_arrival_priority_job_id(self):
        table = JobTable(
            job_id=[3, 1, 2, 0],
            arrival=[5.0, 0.0, 5.0, 5.0],
            qubits=[4, 4, 4, 4],
            depth=[5, 5, 5, 5],
            shots=[10, 10, 10, 10],
            two_qubit_gates=[2, 2, 2, 2],
            priority=[0, 0, 1, 0],
        )
        assert table.job_id.tolist() == [1, 0, 3, 2]
        assert table.arrival.tolist() == [0.0, 5.0, 5.0, 5.0]

    def test_column_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            JobTable(job_id=[0, 1], arrival=[0.0], qubits=[2, 2],
                     depth=[5, 5], shots=[10, 10], two_qubit_gates=[1, 1])

    def test_negative_arrival_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            JobTable(job_id=[0], arrival=[-1.0], qubits=[2], depth=[5],
                     shots=[10], two_qubit_gates=[1])

    def test_synthetic_validation(self):
        with pytest.raises(ValueError):
            JobTable.synthetic(0)
        with pytest.raises(ValueError, match="arrival_times"):
            JobTable.synthetic(3, seed=1, arrival_times=[0.0, 1.0])

    def test_from_jobs_round_trip(self):
        jobs = generate_synthetic_jobs(num_jobs=8, seed=5)
        table = JobTable.from_jobs(jobs)
        assert len(table) == 8
        assert table.jobs is not None
        for row in range(len(table)):
            job = table.jobs[row]
            assert table.job_id[row] == job.job_id
            assert table.qubits[row] == job.num_qubits
            assert table.shots[row] == job.num_shots


class TestArrivalGroups:
    """iter_arrival_groups must tile the table exactly like arrival_groups."""

    SHAPES = {
        "batch_t0": np.zeros(10),
        "all_distinct": np.arange(200, dtype=float),
        "small_runs": np.repeat(np.arange(40, dtype=float), 5),
        "ties_cross_chunks": np.repeat(np.arange(5, dtype=float), 130),
        "singleton": np.array([7.5]),
    }

    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_lazy_matches_eager(self, shape):
        arrival = self.SHAPES[shape]
        n = len(arrival)
        table = JobTable(
            job_id=np.arange(n), arrival=arrival, qubits=np.full(n, 2),
            depth=np.full(n, 5), shots=np.full(n, 10),
            two_qubit_gates=np.full(n, 1),
        )
        eager = table.arrival_groups()
        lazy = list(table.iter_arrival_groups(_chunk=64))
        assert lazy == eager
        # Groups tile [0, n) with strictly increasing times.
        assert lazy[0][1] == 0 and lazy[-1][2] == n
        for (t0, _, stop0), (t1, start1, _) in zip(lazy, lazy[1:]):
            assert stop0 == start1
            assert t0 < t1
        for time, start, stop in lazy:
            seg = table.arrival[start:stop]
            assert np.all(seg == time)
            assert isinstance(time, float)


class TestFallbackIdentity:
    """Requesting fast_path on an *ineligible* configuration falls back to
    the legacy engine — and must never change its output.  Together with
    TestByteIdentity this covers every scenario preset, tenant mix and
    checkpointing setting: eligible configs engage the flat dispatcher
    bit-identically, ineligible ones must be bit-identical trivially."""

    @staticmethod
    def _run_config(fast, **overrides):
        config = SimulationConfig(num_jobs=15, seed=9, fast_path=fast, **overrides)
        env = QCloudSimEnv(config)
        records = env.run_until_complete()
        events = [(e.job_id, e.event, e.time, e.detail) for e in env.records.events]
        dicts = [r.as_dict() for r in records]
        return events, dicts, env.fast_path_active, env.now

    @pytest.mark.parametrize("scenario", ["static", "drift", "flaky-fleet",
                                          "rush-hour", "black-friday"])
    def test_scenario_presets(self, scenario):
        legacy = self._run_config(False, scenario=scenario)
        fast = self._run_config(True, scenario=scenario)
        # Traffic-only presets engage; world dynamics fall back.
        assert fast[2] == (scenario in ("static", "rush-hour"))
        assert fast[:2] == legacy[:2]
        assert fast[3] == legacy[3]

    @pytest.mark.parametrize("tenants", ["single", "free-tier-vs-premium",
                                         "batch-vs-interactive", "noisy-neighbor"])
    def test_tenant_mixes(self, tenants):
        legacy = self._run_config(False, tenants=tenants)
        fast = self._run_config(True, tenants=tenants)
        assert not fast[2]  # serve layer always keeps the legacy engine
        assert fast == legacy

    @pytest.mark.parametrize("checkpointing", [False, True])
    def test_checkpointing(self, checkpointing):
        legacy = self._run_config(False, scenario="flaky-fleet",
                                  checkpointing=checkpointing)
        fast = self._run_config(True, scenario="flaky-fleet",
                                checkpointing=checkpointing)
        assert not fast[2]
        assert fast == legacy
