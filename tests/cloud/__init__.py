"""Test package."""
