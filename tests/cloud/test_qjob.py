"""Unit tests for QJob."""

import pytest

from repro.circuits.circuit import CircuitSpec
from repro.cloud.qjob import QJob, QJobStatus


def make_job(job_id=0, q=150, depth=10, shots=20_000, arrival=0.0):
    circuit = CircuitSpec(
        num_qubits=q, depth=depth, num_shots=shots, num_two_qubit_gates=100,
        num_single_qubit_gates=200, name=f"circ_{job_id}",
    )
    return QJob(job_id=job_id, circuit=circuit, arrival_time=arrival)


class TestQJob:
    def test_accessors_match_circuit(self):
        job = make_job(q=180, depth=12, shots=50_000)
        assert job.num_qubits == 180
        assert job.depth == 12
        assert job.num_shots == 50_000
        assert job.num_two_qubit_gates == 100

    def test_initial_status(self):
        assert make_job().status is QJobStatus.PENDING

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            make_job(arrival=-1.0)

    def test_dict_roundtrip(self):
        job = make_job(job_id=7, arrival=3.5)
        rebuilt = QJob.from_dict(job.as_dict())
        assert rebuilt.job_id == 7
        assert rebuilt.arrival_time == 3.5
        assert rebuilt.circuit == job.circuit

    def test_from_dict_string_values(self):
        # CSV readers hand back strings; from_dict must coerce them.
        job = QJob.from_dict(
            {"job_id": "3", "num_qubits": "140", "depth": "8", "num_shots": "15000",
             "arrival_time": "2.5"}
        )
        assert job.job_id == 3
        assert job.num_qubits == 140
        assert job.arrival_time == 2.5

    def test_repr_contains_key_fields(self):
        text = repr(make_job(job_id=9))
        assert "id=9" in text and "q=150" in text
