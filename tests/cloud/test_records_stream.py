"""Streaming records manager and chunked JSONL export."""

from __future__ import annotations

import json

import pytest

from repro.cloud.records import JobRecord, JobRecordsManager
from repro.cloud.records_stream import JsonlRecordWriter, StreamingRecordsManager
from repro.metrics.quantiles import P2Quantile


def _record(job_id, *, arrival=0.0, start=1.0, finish=3.0, fidelity=0.9,
            tenant=None, retries=0, service=None, first_start=None):
    return JobRecord(
        job_id=job_id,
        num_qubits=4,
        depth=7,
        num_shots=100,
        arrival_time=arrival,
        start_time=start,
        finish_time=finish,
        fidelity=fidelity,
        communication_time=0.0,
        num_devices=1,
        devices=["ibm_kyiv"],
        allocation=[4],
        retries=retries,
        tenant=tenant,
        service_time=service,
        first_start_time=first_start,
    )


class TestStreamingManager:
    def test_keeps_event_detail_flags(self):
        assert JobRecordsManager.KEEPS_EVENT_DETAIL is True
        assert StreamingRecordsManager.KEEPS_EVENT_DETAIL is False

    def test_counts_instead_of_storing(self):
        mgr = StreamingRecordsManager()
        mgr.log_arrival(1, 0.0)
        mgr.log_start(1, 1.0, detail="ibm_kyiv")
        mgr.log_finish(1, 3.0)
        assert mgr.event_counts == {"arrival": 1, "start": 1, "finish": 1}
        assert mgr.events == []
        assert mgr.events_for(1) == []

    def test_unknown_event_still_rejected(self):
        with pytest.raises(ValueError, match="unknown event"):
            StreamingRecordsManager().log_event(1, "teleported", 0.0)

    def test_log_arrival_block_counts(self):
        mgr = StreamingRecordsManager()
        mgr.log_arrival_block([10, 11, 12, 13], 1, 4, 2.0)
        assert mgr.event_counts == {"arrival": 3}

    def test_base_log_arrival_block_matches_per_row(self):
        block, loop = JobRecordsManager(), JobRecordsManager()
        job_ids = [7, 8, 9]
        block.log_arrival_block(job_ids, 0, 3, 5.0)
        for job_id in job_ids:
            loop.log_arrival(job_id, 5.0)
        assert block.events == loop.events

    def test_records_aggregated_not_stored(self):
        mgr = StreamingRecordsManager()
        for i in range(10):
            mgr.add_record(_record(i, fidelity=0.8 + 0.01 * i))
        assert mgr.completed == 10
        assert len(mgr) == 10
        assert mgr.completed_records == []
        assert mgr.record_for(3) is None
        assert mgr.mean_fidelity == pytest.approx(sum(0.8 + 0.01 * i for i in range(10)) / 10)

    def test_mean_fidelity_none_when_empty(self):
        assert StreamingRecordsManager().mean_fidelity is None

    def test_percentiles_match_direct_sketches(self):
        mgr = StreamingRecordsManager()
        records = [
            _record(i, arrival=float(i), start=float(i) + 0.5 * i, finish=float(i) + i + 2.0)
            for i in range(25)
        ]
        waits, turnarounds = {}, {}
        for p in (0.5, 0.95, 0.99):
            waits[p], turnarounds[p] = P2Quantile(p), P2Quantile(p)
        for record in records:
            mgr.add_record(record)
            for p in waits:
                waits[p].add(record.wait_time)
                turnarounds[p].add(record.turnaround_time)
        got = mgr.latency_percentiles()
        for p in (50, 95, 99):
            assert got[f"wait_p{p}"] == waits[p / 100].value
            assert got[f"turnaround_p{p}"] == turnarounds[p / 100].value

    def test_retried_record_wait_uses_service_split(self):
        # The inlined wait arithmetic must equal the JobRecord property.
        record = _record(1, arrival=0.0, start=5.0, finish=20.0,
                         retries=2, service=6.0, first_start=1.0)
        mgr = StreamingRecordsManager()
        mgr.add_record(record)
        assert mgr.latency_percentiles()["wait_p50"] == record.wait_time

    def test_tenant_slicing(self):
        mgr = StreamingRecordsManager()
        for i in range(8):
            mgr.add_record(_record(i, finish=2.0 + i, tenant="premium"))
        for i in range(8, 12):
            mgr.add_record(_record(i, finish=30.0 + i, tenant="free"))
        premium = mgr.latency_percentiles("premium")
        free = mgr.latency_percentiles("free")
        assert premium["turnaround_p50"] < free["turnaround_p50"]
        assert mgr.latency_percentiles("unknown")["wait_p50"] is None

    def test_aggregates_payload(self):
        mgr = StreamingRecordsManager()
        mgr.log_arrival(0, 0.0)
        mgr.add_record(_record(0))
        payload = mgr.aggregates()
        assert payload["completed"] == 1
        assert payload["event_counts"] == {"arrival": 1}
        assert "wait_p50" in payload and "turnaround_p99" in payload
        assert json.dumps(payload)  # JSON-safe

    def test_to_csv_refuses(self, tmp_path):
        with pytest.raises(RuntimeError, match="export_path"):
            StreamingRecordsManager().to_csv(str(tmp_path / "out.csv"))


class TestJsonlExport:
    def test_chunked_writing_and_close(self, tmp_path):
        path = tmp_path / "records.jsonl"
        writer = JsonlRecordWriter(str(path), chunk_size=10)
        for i in range(25):
            writer.write(_record(i))
        assert writer.rows_written == 20  # two full chunks flushed
        writer.close()
        assert writer.rows_written == 25
        lines = path.read_text().splitlines()
        assert len(lines) == 25
        rows = [json.loads(line) for line in lines]
        assert [row["job_id"] for row in rows] == list(range(25))
        assert rows[0] == {k: v for k, v in _record(0).as_dict().items()}

    def test_context_manager_flushes(self, tmp_path):
        path = tmp_path / "records.jsonl"
        with JsonlRecordWriter(str(path), chunk_size=100) as writer:
            writer.write(_record(1))
        assert len(path.read_text().splitlines()) == 1

    def test_invalid_chunk_size(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_size"):
            JsonlRecordWriter(str(tmp_path / "x.jsonl"), chunk_size=0)

    def test_manager_export_path(self, tmp_path):
        path = tmp_path / "export.jsonl"
        with StreamingRecordsManager(export_path=str(path), chunk_size=4) as mgr:
            for i in range(9):
                mgr.add_record(_record(i))
            payload = mgr.aggregates()
            # rows_written in aggregates includes the still-buffered tail.
            assert payload["rows_written"] == 9
            assert payload["export_path"] == str(path)
        assert len(path.read_text().splitlines()) == 9
