"""Unit tests for the simulation configuration."""

import pytest

from repro.cloud.config import SimulationConfig


class TestDefaults:
    def test_paper_defaults(self):
        cfg = SimulationConfig()
        assert cfg.num_jobs == 1000
        assert cfg.qubit_range == (130, 250)
        assert cfg.depth_range == (5, 20)
        assert cfg.shots_range == (10_000, 100_000)
        assert cfg.device_qubits == 127
        assert cfg.quantum_volume == 127
        assert len(cfg.device_names) == 5
        assert cfg.comm_latency_per_qubit == 0.02
        assert cfg.comm_fidelity_penalty == 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_jobs=0)
        with pytest.raises(ValueError):
            SimulationConfig(device_qubits=-1)
        with pytest.raises(ValueError):
            SimulationConfig(device_names=[])
        with pytest.raises(ValueError):
            SimulationConfig(qubit_range=(200, 100))
        with pytest.raises(ValueError):
            SimulationConfig(arrival="weird")
        with pytest.raises(ValueError):
            SimulationConfig(comm_fidelity_penalty=2.0)


class TestDerivedConfigs:
    def test_with_policy_copies(self):
        cfg = SimulationConfig(policy="speed", num_jobs=10)
        other = cfg.with_policy("fair")
        assert other.policy == "fair"
        assert other.num_jobs == 10
        assert cfg.policy == "speed"

    def test_scaled(self):
        cfg = SimulationConfig(num_jobs=1000)
        small = cfg.scaled(25)
        assert small.num_jobs == 25
        assert small.device_names == cfg.device_names

    def test_with_scenario_copies(self):
        cfg = SimulationConfig(num_jobs=10)
        drifted = cfg.with_scenario("drift")
        assert drifted.scenario == "drift"
        assert drifted.num_jobs == 10
        assert cfg.scenario is None
        assert drifted.with_scenario(None).scenario is None

    def test_with_tenants_copies(self):
        cfg = SimulationConfig(num_jobs=10)
        served = cfg.with_tenants("free-tier-vs-premium")
        assert served.tenants == "free-tier-vs-premium"
        assert served.num_jobs == 10
        assert cfg.tenants is None
        assert served.with_tenants(None).tenants is None

    def test_with_checkpointing_copies(self):
        cfg = SimulationConfig(num_jobs=10)
        assert cfg.checkpointing is False  # off by default
        resumable = cfg.with_checkpointing()
        assert resumable.checkpointing is True
        assert resumable.num_jobs == 10
        assert cfg.checkpointing is False
        assert resumable.with_checkpointing(False).checkpointing is False

    def test_as_dict_roundtrip(self):
        cfg = SimulationConfig(num_jobs=5, seed=9)
        rebuilt = SimulationConfig(**cfg.as_dict())
        assert rebuilt == cfg
