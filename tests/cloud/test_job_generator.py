"""Unit tests for the job generator and synthetic workload creation."""

import numpy as np
import pytest

from repro.circuits.circuit import CircuitSpec
from repro.cloud.broker import Broker
from repro.cloud.job_generator import JobGenerator, generate_synthetic_jobs
from repro.cloud.qcloud import QCloud
from repro.cloud.qjob import QJob
from repro.cloud.records import JobRecordsManager
from repro.hardware.backends import get_device_profile
from repro.scheduling.speed import SpeedPolicy


class TestSyntheticJobs:
    def test_case_study_ranges(self):
        jobs = generate_synthetic_jobs(100, seed=0)
        assert len(jobs) == 100
        for job in jobs:
            assert 130 <= job.num_qubits <= 250
            assert 5 <= job.depth <= 20
            assert 10_000 <= job.num_shots <= 100_000
            assert job.arrival_time == 0.0

    def test_seed_reproducibility(self):
        j1 = generate_synthetic_jobs(20, seed=42)
        j2 = generate_synthetic_jobs(20, seed=42)
        assert [j.circuit for j in j1] == [j.circuit for j in j2]
        j3 = generate_synthetic_jobs(20, seed=43)
        assert [j.circuit for j in j1] != [j.circuit for j in j3]

    def test_poisson_arrivals_increase(self):
        jobs = generate_synthetic_jobs(50, seed=1, arrival="poisson", arrival_rate=0.1)
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0
        assert arrivals[-1] > 0.0
        # Mean inter-arrival should be near 1/rate.
        gaps = np.diff(arrivals)
        assert np.mean(gaps) == pytest.approx(10.0, rel=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_synthetic_jobs(0)
        with pytest.raises(ValueError):
            generate_synthetic_jobs(5, arrival="burst")
        with pytest.raises(ValueError):
            generate_synthetic_jobs(5, arrival="poisson", arrival_rate=0.0)

    def test_unique_job_ids(self):
        jobs = generate_synthetic_jobs(200, seed=2)
        assert len({j.job_id for j in jobs}) == 200


class TestJobGeneratorDispatch:
    def _build(self, env):
        profiles = [
            get_device_profile("ibm_strasbourg", num_qubits=12, quantum_volume=32),
            get_device_profile("ibm_kyiv", num_qubits=12, quantum_volume=32),
        ]
        cloud = QCloud(env, profiles)
        records = JobRecordsManager()
        broker = Broker(env, cloud, SpeedPolicy(), records)
        return cloud, records, broker

    def _job(self, job_id, arrival, q=8):
        circuit = CircuitSpec(num_qubits=q, depth=4, num_shots=2_000, num_two_qubit_gates=5)
        return QJob(job_id=job_id, circuit=circuit, arrival_time=arrival)

    def test_jobs_dispatched_at_arrival_times(self, env):
        cloud, records, broker = self._build(env)
        jobs = [self._job(0, 0.0), self._job(1, 50.0), self._job(2, 120.0)]
        gen = JobGenerator(env, broker, jobs)
        gen.start()
        env.run()
        arrivals = {e.job_id: e.time for e in records.events if e.event == "arrival"}
        assert arrivals == {0: 0.0, 1: 50.0, 2: 120.0}
        assert len(records.completed_records) == 3

    def test_jobs_sorted_by_arrival(self, env):
        cloud, records, broker = self._build(env)
        jobs = [self._job(0, 30.0), self._job(1, 0.0)]
        gen = JobGenerator(env, broker, jobs)
        assert [j.job_id for j in gen.jobs] == [1, 0]
        assert len(gen) == 2

    def test_cannot_start_twice(self, env):
        cloud, records, broker = self._build(env)
        gen = JobGenerator(env, broker, [self._job(0, 0.0)])
        gen.start()
        with pytest.raises(RuntimeError):
            gen.start()

    def test_synthetic_classmethod(self, env):
        cloud, records, broker = self._build(env)
        gen = JobGenerator.synthetic(
            env, broker, num_jobs=3, seed=0, qubit_range=(14, 20), shots_range=(1_000, 2_000)
        )
        gen.start()
        env.run()
        assert len(records.completed_records) == 3

    def test_all_jobs_done_event(self, env):
        cloud, records, broker = self._build(env)
        gen = JobGenerator(env, broker, [self._job(0, 0.0), self._job(1, 1.0)])
        gen.start()
        env.run()
        assert len(gen.submitted) == 2
