"""Unit tests for CSV/JSON job I/O."""

import pytest

from repro.cloud.io import jobs_from_csv, jobs_from_json, jobs_to_csv, jobs_to_json
from repro.cloud.job_generator import generate_synthetic_jobs


class TestCSV:
    def test_roundtrip(self, tmp_path):
        jobs = generate_synthetic_jobs(10, seed=0, arrival="poisson", arrival_rate=0.1)
        path = str(tmp_path / "jobs.csv")
        jobs_to_csv(jobs, path)
        loaded = jobs_from_csv(path)
        assert len(loaded) == 10
        for original, rebuilt in zip(jobs, loaded):
            assert rebuilt.job_id == original.job_id
            assert rebuilt.num_qubits == original.num_qubits
            assert rebuilt.depth == original.depth
            assert rebuilt.num_shots == original.num_shots
            assert rebuilt.arrival_time == pytest.approx(original.arrival_time)

    def test_hand_written_minimal_csv(self, tmp_path):
        path = tmp_path / "minimal.csv"
        path.write_text(
            "job_id,num_qubits,depth,num_shots\n"
            "0,140,8,20000\n"
            "1,200,15,50000\n"
        )
        jobs = jobs_from_csv(str(path))
        assert len(jobs) == 2
        assert jobs[1].num_qubits == 200
        assert jobs[0].arrival_time == 0.0

    def test_empty_csv_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("job_id,num_qubits,depth,num_shots\n")
        with pytest.raises(ValueError):
            jobs_from_csv(str(path))


class TestJSON:
    def test_roundtrip(self, tmp_path):
        jobs = generate_synthetic_jobs(5, seed=3)
        path = str(tmp_path / "jobs.json")
        jobs_to_json(jobs, path)
        loaded = jobs_from_json(path)
        assert [j.as_dict() for j in loaded] == [j.as_dict() for j in jobs]

    def test_invalid_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            jobs_from_json(str(path))
