"""Checkpointed preemption on the plain broker (outage / maintenance kills).

With ``SimulationConfig.checkpointing`` a killed attempt records the shots
every sub-job completed (job-level checkpoint = minimum across fragments)
and the requeued job resumes with only the remainder; the final fidelity is
the shot-weighted merge across segments.  Off — the default — everything is
byte-identical to full re-execution.

Also covers the retried-job timing-attribution bugfix: ``wait_time`` is
cumulative time *not* executing, ``first_start_time`` / ``service_time``
separate queueing from execution across attempts.
"""

import pytest

from repro.circuits.circuit import CircuitSpec
from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.dynamics import MaintenanceWindow, Scenario
from repro.hardware.backends import get_device_profile
from repro.metrics.fidelity import final_fidelity, merge_segment_fidelities

SHOTS = 1_000_000

KILL_AT = 50.0
BACK_AT = 150.0


def _job(job_id=0, shots=SHOTS, arrival=0.0, q=127):
    from repro.cloud.qjob import QJob

    circuit = CircuitSpec(
        num_qubits=q, depth=8, num_shots=shots,
        num_two_qubit_gates=12, num_single_qubit_gates=30, name=f"job_{job_id}",
    )
    return QJob(job_id=job_id, circuit=circuit, arrival_time=arrival)


def _kill_scenario(windows=((KILL_AT, 100.0),)):
    return Scenario(
        name="maint-kill",
        maintenance=tuple(
            MaintenanceWindow(start=start, duration=duration, device="ibm_brussels",
                              kill_running=True)
            for start, duration in windows
        ),
    )


def _run(checkpointing, jobs=None, scenario=None, max_requeues=100):
    config = SimulationConfig(
        num_jobs=1, checkpointing=checkpointing, max_requeues=max_requeues,
    )
    env = QCloudSimEnv(
        config=config,
        devices=[get_device_profile("ibm_brussels")],
        jobs=jobs if jobs is not None else [_job()],
        scenario=scenario if scenario is not None else _kill_scenario(),
    )
    records = env.run_until_complete()
    return env, records


class TestResumeAfterMaintenanceKill:
    def test_resumes_with_only_remaining_shots(self):
        env, records = _run(checkpointing=True)
        (record,) = records
        device = env.cloud.device("ibm_brussels")

        full_duration = device.calculate_process_time(_job().circuit)
        expected_completed = int(SHOTS * (KILL_AT / full_duration))
        assert 0 < expected_completed < SHOTS

        assert record.retries == 1
        assert record.resumed_shots == expected_completed
        assert record.num_shots == SHOTS  # the job's demand is unchanged

        # The resume attempt executed only the remainder: its processing time
        # is the CLOPS model evaluated at the remaining shot count.
        remaining = SHOTS - expected_completed
        resumed_duration = device.calculate_process_time(
            _job().circuit.with_shots(remaining)
        )
        assert record.processing_time == pytest.approx(resumed_duration)
        assert record.finish_time == pytest.approx(BACK_AT + resumed_duration)

        kinds = [e.event for e in env.records.events_for(0)]
        assert kinds.count("checkpoint") == 1
        assert kinds.count("resume") == 1
        assert kinds.index("checkpoint") < kinds.index("resume")

    def test_checkpoint_and_resume_event_details(self):
        env, records = _run(checkpointing=True)
        (record,) = records
        events = env.records.events_for(0)
        (checkpoint,) = [e for e in events if e.event == "checkpoint"]
        (resume,) = [e for e in events if e.event == "resume"]
        assert checkpoint.time == pytest.approx(KILL_AT)
        assert checkpoint.detail == f"{record.resumed_shots}/{SHOTS} shots"
        assert resume.time == pytest.approx(BACK_AT)
        assert resume.detail == f"{SHOTS - record.resumed_shots}/{SHOTS} shots remaining"

    def test_fidelity_is_shot_weighted_merge(self):
        env, records = _run(checkpointing=True)
        (record,) = records
        # One single-device segment per attempt: breakdowns concatenate.
        assert len(record.breakdowns) == 2
        completed = record.resumed_shots
        remaining = SHOTS - completed
        expected = merge_segment_fidelities(
            [
                (completed, [record.breakdowns[0].device]),
                (remaining, [record.breakdowns[1].device]),
            ],
            phi=env.cloud.communication.fidelity_penalty,
        )
        assert record.fidelity == pytest.approx(expected)
        assert 0.0 < record.fidelity <= 1.0

    def test_checkpointing_beats_full_reexecution(self):
        env_off, (off,) = _run(checkpointing=False)
        env_on, (on,) = _run(checkpointing=True)
        # Same kill, same recovery — but the resumed job only pays for the
        # shots it still owes, so it finishes strictly earlier.
        assert on.finish_time < off.finish_time
        assert on.turnaround_time < off.turnaround_time
        assert on.processing_time < off.processing_time
        # Off: the retried attempt re-executes everything from scratch.
        assert off.resumed_shots == 0
        assert off.processing_time == pytest.approx(
            env_off.cloud.device("ibm_brussels").calculate_process_time(_job().circuit)
        )

    def test_disabled_checkpointing_logs_no_checkpoint_events(self):
        env, records = _run(checkpointing=False)
        kinds = {e.event for e in env.records.events}
        assert "checkpoint" not in kinds
        assert "resume" not in kinds
        assert records[0].retries == 1


class TestTimingAttribution:
    """Retried jobs: wait_time is cumulative time NOT executing (the old
    ``start - arrival`` silently included the aborted attempt's execution)."""

    @pytest.mark.parametrize("checkpointing", [False, True])
    def test_retried_job_wait_and_service_time(self, checkpointing):
        env, records = _run(checkpointing=checkpointing)
        (record,) = records
        # Executed 0..50 (killed), queued 50..150, re-executed 150..finish.
        assert record.first_start_time == pytest.approx(0.0)
        assert record.start_time == pytest.approx(BACK_AT)
        expected_service = KILL_AT + (record.finish_time - BACK_AT)
        assert record.service_time == pytest.approx(expected_service)
        # Cumulative time not executing: only the 100 s offline window.
        assert record.wait_time == pytest.approx(BACK_AT - KILL_AT)
        # The old accounting would have reported start - arrival = 150.
        assert record.wait_time < record.start_time - record.arrival_time
        assert record.wait_time + record.service_time == pytest.approx(
            record.turnaround_time
        )

    def test_single_attempt_wait_time_unchanged(self):
        env, records = _run(checkpointing=False, scenario=Scenario(name="none"))
        (record,) = records
        assert record.retries == 0
        # Exactly the legacy expression, bit-for-bit.
        assert record.wait_time == record.start_time - record.arrival_time
        assert record.first_start_time == record.start_time
        assert record.service_time == pytest.approx(
            record.finish_time - record.start_time
        )

    def test_csv_roundtrips_new_columns(self, tmp_path):
        import csv

        env, records = _run(checkpointing=True)
        path = tmp_path / "records.csv"
        env.records.to_csv(str(path))
        with open(path) as fh:
            (row,) = list(csv.DictReader(fh))
        (record,) = records
        assert float(row["first_start_time"]) == record.first_start_time
        assert float(row["service_time"]) == pytest.approx(record.service_time)
        assert float(row["wait_time"]) == pytest.approx(record.wait_time)
        assert int(row["resumed_shots"]) == record.resumed_shots


class TestRequeueExhaustion:
    def test_partial_progress_still_fails_at_limit(self):
        """max_requeues exhaustion with checkpointed progress must log
        ``failed`` — partial progress is no licence to resume forever."""
        # Two killing windows: every attempt dies before finishing.
        scenario = _kill_scenario(windows=((50.0, 100.0), (200.0, 100.0)))
        env, records = _run(checkpointing=True, scenario=scenario, max_requeues=1)
        assert records == []
        assert len(env.broker.failed_jobs) == 1

        events = env.records.events_for(0)
        kinds = [e.event for e in events]
        assert kinds.count("checkpoint") >= 1  # progress was saved...
        assert kinds[-1] == "failed"           # ...but the guard still fires
        assert kinds.count("requeue") == 1
        (failed,) = [e for e in events if e.event == "failed"]
        assert "requeue limit (1)" in failed.detail
        assert failed.time == pytest.approx(200.0)

    def test_enough_budget_resumes_through_repeated_kills(self):
        scenario = _kill_scenario(windows=((50.0, 100.0), (200.0, 100.0)))
        env, records = _run(checkpointing=True, scenario=scenario, max_requeues=5)
        (record,) = records
        assert record.retries == 2
        kinds = [e.event for e in env.records.events_for(0)]
        assert kinds.count("checkpoint") == 2
        assert kinds.count("resume") == 2
        # Monotone progress: each checkpoint carries more completed shots.
        details = [e.detail for e in env.records.events_for(0) if e.event == "checkpoint"]
        counts = [int(d.split("/")[0]) for d in details]
        assert counts == sorted(counts) and counts[0] < counts[1]
        assert record.resumed_shots == counts[-1]
        assert len(record.breakdowns) == 3  # one per segment


class TestStaticEquivalence:
    @pytest.mark.parametrize("policy", ["speed", "fidelity", "fair"])
    def test_no_aborts_means_byte_identical(self, policy):
        """With no kills, checkpointing on/off are byte-identical."""

        def run(checkpointing):
            config = SimulationConfig(
                num_jobs=20, seed=2025, policy=policy, checkpointing=checkpointing,
            )
            env = QCloudSimEnv(config)
            return env, env.run_until_complete()

        env_off, off = run(False)
        env_on, on = run(True)
        assert [r.as_dict() for r in on] == [r.as_dict() for r in off]
        assert [r.breakdowns for r in on] == [r.breakdowns for r in off]
        assert env_on.records.events == env_off.records.events
        assert env_on.now == env_off.now


class TestMergeSegmentFidelities:
    def test_weighted_average(self):
        # 3 shots at 0.9 (1 device) + 1 shot at 0.5 (1 device).
        merged = merge_segment_fidelities([(3, [0.9]), (1, [0.5])], phi=1.0)
        assert merged == pytest.approx((3 * 0.9 + 1 * 0.5) / 4)

    def test_per_segment_communication_penalty(self):
        # Segment 1 on one device, segment 2 split over two devices: each
        # segment gets its own Eq.-8 penalty.
        merged = merge_segment_fidelities([(1, [0.8]), (1, [0.8, 0.6])], phi=0.95)
        expected = (final_fidelity([0.8], 0.95) + final_fidelity([0.8, 0.6], 0.95)) / 2
        assert merged == pytest.approx(expected)

    def test_single_segment_matches_final_fidelity(self):
        assert merge_segment_fidelities([(7, [0.8, 0.7])]) == pytest.approx(
            final_fidelity([0.8, 0.7])
        )

    def test_rejects_empty_and_nonpositive_shots(self):
        with pytest.raises(ValueError):
            merge_segment_fidelities([])
        with pytest.raises(ValueError):
            merge_segment_fidelities([(0, [0.9])])


class TestWithShots:
    def test_with_shots_replaces_only_shots(self):
        circuit = _job().circuit
        resumed = circuit.with_shots(123)
        assert resumed.num_shots == 123
        assert resumed.num_qubits == circuit.num_qubits
        assert resumed.depth == circuit.depth
        assert resumed.num_two_qubit_gates == circuit.num_two_qubit_gates

    def test_with_shots_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            _job().circuit.with_shots(0)
