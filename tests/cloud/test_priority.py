"""``QJob.priority`` is real: validated, and honoured by the baseline path.

The documented contract is "smaller = more important".  The job generator
submits same-time arrivals in priority order, so the plain broker's FIFO
admission — and therefore every allocation policy — serves more important
jobs first.  The default priority (0 everywhere) keeps submission order
byte-identical to the pre-priority sort key.
"""

import pytest

from repro.circuits.circuit import CircuitSpec
from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.cloud.qjob import QJob
from repro.hardware.backends import get_device_profile


def make_job(job_id, priority=0, arrival=0.0, q=127):
    circuit = CircuitSpec(
        num_qubits=q, depth=8, num_shots=40_000,
        num_two_qubit_gates=12, num_single_qubit_gates=30, name=f"job_{job_id}",
    )
    return QJob(job_id=job_id, circuit=circuit, arrival_time=arrival, priority=priority)


class TestValidation:
    def test_priority_must_be_int(self):
        with pytest.raises(TypeError):
            make_job(0, priority=1.5)
        with pytest.raises(TypeError):
            make_job(0, priority="high")
        with pytest.raises(TypeError):
            make_job(0, priority=True)  # bools are not priorities

    def test_negative_priority_outranks_default(self):
        job = make_job(0, priority=-3)
        assert job.priority == -3

    def test_priority_survives_clone_and_roundtrip(self):
        job = make_job(0, priority=4)
        assert job.clone().priority == 4
        assert QJob.from_dict(job.as_dict()).priority == 4


@pytest.mark.parametrize("policy", ["speed", "fidelity", "fair"])
class TestPriorityAwareBaseline:
    def test_same_time_batch_served_in_priority_order(self, policy):
        """On a one-device fleet, the lowest-priority-value job of a t=0
        batch starts first regardless of job id."""
        jobs = [
            make_job(0, priority=5),
            make_job(1, priority=0),
            make_job(2, priority=3),
        ]
        env = QCloudSimEnv(
            config=SimulationConfig(num_jobs=3, policy=policy),
            devices=[get_device_profile("ibm_brussels")],
            jobs=jobs,
        )
        records = env.run_until_complete()
        order = [r.job_id for r in sorted(records, key=lambda r: r.start_time)]
        assert order == [1, 2, 0]

    def test_default_priorities_keep_job_id_order(self, policy):
        """All-zero priorities reproduce the historical submission order."""
        jobs = [make_job(i) for i in range(3)]
        env = QCloudSimEnv(
            config=SimulationConfig(num_jobs=3, policy=policy),
            devices=[get_device_profile("ibm_brussels")],
            jobs=jobs,
        )
        records = env.run_until_complete()
        order = [r.job_id for r in sorted(records, key=lambda r: r.start_time)]
        assert order == [0, 1, 2]
