"""Unit tests for the classical communication model."""

import pytest

from repro.cloud.communication import ClassicalCommunicationModel


class TestValidation:
    def test_defaults_match_paper(self):
        model = ClassicalCommunicationModel()
        assert model.latency_per_qubit == 0.02
        assert model.fidelity_penalty == 0.95
        assert model.accounting == "per_link"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ClassicalCommunicationModel(latency_per_qubit=-0.1)
        with pytest.raises(ValueError):
            ClassicalCommunicationModel(fidelity_penalty=1.2)
        with pytest.raises(ValueError):
            ClassicalCommunicationModel(accounting="broadcast")


class TestQubitAccounting:
    def test_single_device_no_communication(self):
        model = ClassicalCommunicationModel()
        assert model.qubits_communicated([190]) == 0
        assert model.communication_delay([190]) == 0.0

    def test_per_link_counts_full_width_per_link(self):
        model = ClassicalCommunicationModel(accounting="per_link")
        assert model.qubits_communicated([127, 63]) == 190
        assert model.qubits_communicated([100, 50, 40]) == 2 * 190

    def test_non_primary_counts_remote_fragments_once(self):
        model = ClassicalCommunicationModel(accounting="non_primary")
        assert model.qubits_communicated([127, 63]) == 63
        assert model.qubits_communicated([100, 50, 40]) == 90

    def test_zero_entries_ignored(self):
        model = ClassicalCommunicationModel()
        assert model.qubits_communicated([190, 0, 0]) == 0

    def test_delay_uses_latency(self):
        model = ClassicalCommunicationModel(latency_per_qubit=0.02)
        assert model.communication_delay([127, 63]) == pytest.approx(3.8)

    def test_penalty(self):
        model = ClassicalCommunicationModel(fidelity_penalty=0.95)
        assert model.penalty(1) == 1.0
        assert model.penalty(3) == pytest.approx(0.95**2)
