"""Unit tests for the QCloud fleet container."""

import pytest

from repro.cloud.qcloud import QCloud
from repro.cloud.qdevice import IBMQuantumDevice
from repro.des.environment import Environment
from repro.hardware.backends import get_device_profile


@pytest.fixture
def cloud(env):
    profiles = [
        get_device_profile("ibm_strasbourg", num_qubits=12, quantum_volume=32),
        get_device_profile("ibm_kyiv", num_qubits=12, quantum_volume=32),
    ]
    return QCloud(env, profiles)


class TestConstruction:
    def test_profiles_wrapped_into_devices(self, cloud):
        assert len(cloud.devices) == 2
        assert all(isinstance(d, IBMQuantumDevice) for d in cloud.devices)

    def test_accepts_device_instances(self, env, small_profile):
        device = IBMQuantumDevice(env, small_profile)
        cloud = QCloud(env, [device])
        assert cloud.devices[0] is device

    def test_rejects_empty_fleet(self, env):
        with pytest.raises(ValueError):
            QCloud(env, [])

    def test_rejects_duplicate_names(self, env, small_profile):
        d1 = IBMQuantumDevice(env, small_profile)
        d2 = IBMQuantumDevice(env, small_profile)
        with pytest.raises(ValueError):
            QCloud(env, [d1, d2])

    def test_rejects_unknown_specification(self, env):
        with pytest.raises(TypeError):
            QCloud(env, ["ibm_kyiv"])


class TestQueries:
    def test_capacity_queries(self, cloud):
        assert cloud.total_qubits == 24
        assert cloud.free_qubits == 24
        assert cloud.max_device_qubits == 12
        assert cloud.fits_single_device(12)
        assert cloud.requires_partitioning(13)
        assert cloud.can_ever_fit(24)
        assert not cloud.can_ever_fit(25)

    def test_device_lookup(self, cloud):
        assert cloud.device("ibm_kyiv").name == "ibm_kyiv"
        with pytest.raises(KeyError):
            cloud.device("ibm_nowhere")
        assert cloud.device_names() == ["ibm_strasbourg", "ibm_kyiv"]

    def test_utilization_snapshot(self, cloud, env):
        def proc(env, cloud):
            yield cloud.devices[0].request_qubits(6)

        env.process(proc(env, cloud))
        env.run()
        util = cloud.utilization()
        assert util["ibm_strasbourg"] == pytest.approx(0.5)
        assert util["ibm_kyiv"] == 0.0
        assert cloud.free_qubits == 18


class TestCapacityReleasedSignal:
    def test_waiters_are_woken_once_per_release(self, cloud, env):
        log = []

        def waiter(env, cloud, name):
            yield cloud.capacity_released
            log.append((name, env.now))

        def releaser(env, cloud):
            yield env.timeout(4)
            cloud.notify_capacity_released()

        env.process(waiter(env, cloud, "w1"))
        env.process(waiter(env, cloud, "w2"))
        env.process(releaser(env, cloud))
        env.run()
        assert sorted(log) == [("w1", 4), ("w2", 4)]
        assert cloud.jobs_completed == 1

    def test_signal_is_renewed_after_firing(self, cloud, env):
        log = []

        def waiter(env, cloud):
            yield cloud.capacity_released
            log.append(env.now)
            yield cloud.capacity_released
            log.append(env.now)

        def releaser(env, cloud):
            yield env.timeout(1)
            cloud.notify_capacity_released()
            yield env.timeout(2)
            cloud.notify_capacity_released()

        env.process(waiter(env, cloud))
        env.process(releaser(env, cloud))
        env.run()
        assert log == [1, 3]
