"""Integration tests for QCloudSimEnv (full simulations on scaled-down workloads)."""

import pytest

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.cloud.job_generator import generate_synthetic_jobs
from repro.scheduling.fair import FairPolicy


class TestConstruction:
    def test_devices_built_from_config(self, fast_config):
        env = QCloudSimEnv(fast_config)
        assert len(env.cloud.devices) == 5
        assert env.cloud.total_qubits == 5 * 127
        assert env.policy.name == "speed"

    def test_explicit_policy_instance(self, fast_config):
        env = QCloudSimEnv(fast_config, policy=FairPolicy())
        assert env.policy.name == "fair"

    def test_explicit_jobs(self, fast_config):
        jobs = generate_synthetic_jobs(3, seed=0)
        env = QCloudSimEnv(fast_config, jobs=jobs)
        assert len(env.job_generator) == 3


class TestFullRun:
    def test_all_jobs_complete(self, fast_config):
        env = QCloudSimEnv(fast_config)
        records = env.run_until_complete()
        assert len(records) == fast_config.num_jobs
        assert not env.broker.failed_jobs
        # All qubits returned to the pools.
        assert env.cloud.free_qubits == env.cloud.total_qubits

    def test_every_job_is_partitioned(self, fast_config):
        # Case-study jobs need 130-250 qubits > 127, so every record must span
        # at least two devices (Eq. 1).
        env = QCloudSimEnv(fast_config)
        for record in env.run_until_complete():
            assert record.num_devices >= 2
            assert sum(record.allocation) == record.num_qubits
            assert record.fidelity > 0

    def test_summary_row(self, fast_config):
        env = QCloudSimEnv(fast_config)
        env.run_until_complete()
        summary = env.summary()
        assert summary.num_jobs == fast_config.num_jobs
        assert 0 < summary.mean_fidelity < 1
        assert summary.total_simulation_time > 0
        assert summary.total_communication_time > 0

    def test_device_utilization_report(self, fast_config):
        env = QCloudSimEnv(fast_config)
        env.run_until_complete()
        report = env.device_utilization_report()
        assert set(report) == set(env.cloud.device_names())
        assert sum(stats["completed_subjobs"] for stats in report.values()) >= fast_config.num_jobs

    def test_deterministic_given_seed(self):
        def run():
            cfg = SimulationConfig(num_jobs=8, seed=11)
            env = QCloudSimEnv(cfg)
            env.run_until_complete()
            summary = env.summary()
            return (
                summary.total_simulation_time,
                summary.mean_fidelity,
                summary.total_communication_time,
            )

        assert run() == run()

    def test_different_policies_give_different_outcomes(self, fast_config):
        results = {}
        for policy in ("speed", "fidelity"):
            cfg = fast_config.with_policy(policy)
            env = QCloudSimEnv(cfg)
            env.run_until_complete()
            results[policy] = env.summary()
        assert (
            results["speed"].total_simulation_time
            != results["fidelity"].total_simulation_time
        )

    def test_poisson_arrival_mode(self):
        cfg = SimulationConfig(num_jobs=6, seed=3, arrival="poisson", arrival_rate=0.01)
        env = QCloudSimEnv(cfg)
        records = env.run_until_complete()
        arrivals = [r.arrival_time for r in records]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0
