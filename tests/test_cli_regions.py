"""Tests for the multi-region surface of the command-line interface."""

import pytest

from repro.cli import main

PRESETS = (
    "single",
    "dual",
    "global-triad",
    "region-outage",
    "cross-region-rush-hour",
    "follow-the-sun",
)


class TestRegionsCommand:
    def test_lists_topologies(self, capsys):
        assert main(["regions"]) == 0
        out = capsys.readouterr().out
        for preset in PRESETS:
            assert preset in out

    def test_verbose_lists_pools_and_scenarios(self, capsys):
        assert main(["regions", "-v"]) == 0
        out = capsys.readouterr().out
        assert "eu-central" in out
        assert "us-east" in out
        assert "ibm_strasbourg" in out
        assert "region-blackout" in out
        assert "(inherit)" in out  # the single preset inherits the fleet


class TestSimulateRegions:
    def test_simulate_dual(self, capsys):
        assert main(["simulate", "--regions", "dual", "-n", "8", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "jobs completed: 8" in out
        assert "dual (2 regions, locality routing)" in out
        assert "eu-central" in out and "us-east" in out
        assert "migrations" in out

    def test_simulate_routing_choice(self, capsys):
        code = main(
            ["simulate", "--regions", "dual", "--routing", "least-loaded",
             "-n", "6", "--seed", "2"]
        )
        assert code == 0
        assert "least-loaded routing" in capsys.readouterr().out

    def test_simulate_records_export(self, capsys, tmp_path):
        records_path = str(tmp_path / "records.csv")
        code = main(
            ["simulate", "--regions", "dual", "-n", "6", "--seed", "2",
             "--records", records_path]
        )
        assert code == 0
        from repro.cloud.io import jobs_from_csv  # noqa: F401  (import check)

        import csv

        with open(records_path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 6

    def test_simulate_rejects_trace_with_regions(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["simulate", "--regions", "dual", "-n", "4",
                  "--trace", str(tmp_path / "t.jsonl")])

    def test_simulate_rejects_unknown_routing(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--regions", "dual", "--routing", "fastest-first"])


class TestCompareSweepRegions:
    def test_compare_over_regions(self, capsys):
        assert main(["compare", "--regions", "dual", "-n", "6", "--seed", "2",
                     "--strategies", "speed", "fidelity"]) == 0
        out = capsys.readouterr().out
        assert "speed" in out and "fidelity" in out
