"""Setuptools shim.

Kept so that the package can be installed in editable mode in fully offline
environments (where the 'wheel' package may be unavailable and PEP-517
editable builds fail):

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
