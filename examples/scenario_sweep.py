#!/usr/bin/env python
"""Sweep allocation policies across non-stationary cloud scenarios.

Builds a policy × scenario grid through the experiment engine and prints one
summary row per cell: how each strategy copes when calibrations drift, when
devices fail mid-job (watch the requeue column), and when traffic arrives in
bursts with heavy-tailed job sizes.

Run:
    python examples/scenario_sweep.py [NUM_JOBS] [--parallel]
"""

from __future__ import annotations

import sys

from repro.cloud.config import SimulationConfig
from repro.engine import ExperimentRunner, ExperimentSpec

SCENARIOS = ("static", "drift", "flaky-fleet", "rush-hour", "black-friday")
STRATEGIES = ("speed", "fidelity", "fair")


def main(num_jobs: int = 40, parallel: bool = False) -> None:
    spec = ExperimentSpec(
        base_config=SimulationConfig(num_jobs=num_jobs, seed=2025),
        strategies=STRATEGIES,
        scenarios=SCENARIOS,
    )
    runner = ExperimentRunner(backend="process" if parallel else "serial")

    print(f"Executing {len(spec)} policy x scenario cells on the {runner.backend} backend ...\n")
    result = runner.run(spec)

    print(f"{'scenario':<14} {'strategy':<10} {'fidelity':>10} {'T_sim(s)':>12} "
          f"{'T_comm(s)':>12} {'requeues':>9}")
    for cell_result in result:
        summary = cell_result.summary
        requeues = sum(r.retries for r in cell_result.records)
        print(
            f"{cell_result.cell.config.scenario:<14} {cell_result.cell.strategy:<10} "
            f"{summary.mean_fidelity:>10.5f} {summary.total_simulation_time:>12,.1f} "
            f"{summary.total_communication_time:>12,.1f} {requeues:>9}"
        )

    by_scenario = {}
    for cell_result in result:
        by_scenario.setdefault(cell_result.cell.config.scenario, []).append(cell_result)
    print()
    for scenario, cells in by_scenario.items():
        best = max(cells, key=lambda c: c.summary.mean_fidelity)
        print(f"best fidelity under {scenario:<14}: {best.cell.strategy} "
              f"({best.summary.mean_fidelity:.5f})")


if __name__ == "__main__":
    positional = [a for a in sys.argv[1:] if not a.startswith("--")]
    main(
        num_jobs=int(positional[0]) if positional else 40,
        parallel="--parallel" in sys.argv,
    )
