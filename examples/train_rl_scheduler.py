#!/usr/bin/env python
"""Train the PPO allocation agent and deploy it in the cloud simulator (§6.6).

Reproduces the paper's RL pipeline end to end:

1. build the QCloudGymEnv allocation MDP over the five-device fleet,
2. train PPO (MLP policy, default hyperparameters) — the paper uses 100,000
   timesteps; pass a smaller budget for a quick demo,
3. print the Fig.-5-style training curve (mean episode reward and entropy
   loss versus timesteps),
4. save the trained policy to disk,
5. deploy it as the ``rlbase`` scheduling policy inside the discrete-event
   simulator and report the resulting Table-2-style metrics.

Run:
    python examples/train_rl_scheduler.py [TOTAL_TIMESTEPS] [MODEL_PATH] [N_ENVS]

``N_ENVS`` (default 16) collects rollouts from a vectorized
``BatchedQCloudEnv`` — several times faster than serial training; pass 1 for
the bit-reproducible serial path.
"""

from __future__ import annotations

import sys

from repro.analysis.training_curve import downsample_curve, summarize_training_curve
from repro.cloud import QCloudSimEnv, SimulationConfig
from repro.rlenv import QCloudGymEnv, evaluate_policy, train_allocation_policy
from repro.scheduling import RLAllocationPolicy


def main(
    total_timesteps: int = 20_000,
    model_path: str = "rl_allocation_policy.npz",
    n_envs: int = 16,
) -> None:
    print(f"Training PPO for {total_timesteps:,} timesteps with n_envs={n_envs} "
          f"(paper: 100,000; learning stabilises around 40,000-50,000)...")
    model, curve = train_allocation_policy(
        total_timesteps=total_timesteps, seed=0, n_envs=n_envs
    )

    print("\n=== Training curve (Fig. 5) ===")
    print(f"{'timesteps':>10} {'ep_rew_mean':>12} {'entropy_loss':>13}")
    for point in downsample_curve(curve, max_points=15):
        print(f"{point['timesteps']:>10.0f} {point['ep_rew_mean']:>12.4f} "
              f"{point['entropy_loss']:>13.3f}")
    stats = summarize_training_curve(curve)
    print(f"\nreward:        {stats['initial_reward']:.4f} -> {stats['final_reward']:.4f}")
    print(f"entropy loss:  {stats['initial_entropy_loss']:.2f} -> {stats['final_entropy_loss']:.2f}")

    model.save(model_path)
    print(f"\nSaved trained policy to {model_path}")

    print("\n=== Held-out evaluation of the allocation policy ===")
    eval_env = QCloudGymEnv(seed=1234)
    eval_stats = evaluate_policy(model, eval_env, n_episodes=200, seed=77)
    print(f"mean reward (mean device fidelity): {eval_stats['mean_reward']:.4f} "
          f"± {eval_stats['std_reward']:.4f}")
    print(f"devices used per allocation       : {eval_stats['mean_devices_used']:.2f}")

    print("\n=== Deployment in the discrete-event simulator (rlbase row of Table 2) ===")
    config = SimulationConfig(policy="rlbase", num_jobs=100, seed=2025)
    env = QCloudSimEnv(config, policy=RLAllocationPolicy(model))
    env.run_until_complete()
    summary = env.summary()
    print(f"T_sim  : {summary.total_simulation_time:,.2f} s")
    print(f"fidelity: {summary.mean_fidelity:.5f} ± {summary.std_fidelity:.5f}")
    print(f"T_comm : {summary.total_communication_time:,.2f} s")
    print(f"devices per job: {summary.mean_devices_per_job:.2f}")


if __name__ == "__main__":
    main(
        total_timesteps=int(sys.argv[1]) if len(sys.argv) > 1 else 20_000,
        model_path=sys.argv[2] if len(sys.argv) > 2 else "rl_allocation_policy.npz",
        n_envs=int(sys.argv[3]) if len(sys.argv) > 3 else 16,
    )
