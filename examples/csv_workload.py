#!/usr/bin/env python
"""Deterministic workloads from CSV/JSON files (benchmarking & debugging mode).

The framework's JobGenerator supports deterministic job flow from external
data formats (§3).  This example:

1. builds two domain workloads — a GHZ-state width sweep and a batch of QAOA
   portfolio-optimisation circuits — and writes them to CSV/JSON,
2. reloads them from disk (as an external user would, e.g. from traces),
3. runs both through the simulator with the error-aware policy,
4. prints per-job results showing how fidelity degrades with circuit width.

Run:
    python examples/csv_workload.py [OUTPUT_DIR]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.cloud import QCloudSimEnv, SimulationConfig
from repro.cloud.io import jobs_from_csv, jobs_from_json, jobs_to_csv, jobs_to_json
from repro.workloads import ghz_sweep_jobs, qaoa_portfolio_jobs


def run_workload(name: str, jobs, policy: str = "fidelity"):
    config = SimulationConfig(policy=policy, num_jobs=len(jobs), seed=1)
    env = QCloudSimEnv(config, jobs=jobs)
    records = env.run_until_complete()
    print(f"\n--- {name}: {len(records)} jobs, policy={policy} ---")
    print(f"{'job':>4} {'circuit':<16} {'qubits':>7} {'devices':>8} {'fidelity':>9} "
          f"{'turnaround (s)':>15}")
    for record in records:
        label = next(
            (j.circuit.name for j in jobs if j.job_id == record.job_id), f"job_{record.job_id}"
        )
        print(f"{record.job_id:>4} {label:<16} {record.num_qubits:>7} {record.num_devices:>8} "
              f"{record.fidelity:>9.4f} {record.turnaround_time:>15.1f}")
    return env.summary()


def main(output_dir: str = ".") -> None:
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)

    # 1. Build and persist the workloads.
    ghz_jobs = ghz_sweep_jobs(widths=list(range(130, 251, 20)))
    qaoa_jobs = qaoa_portfolio_jobs()
    ghz_csv = out / "ghz_sweep.csv"
    qaoa_json = out / "qaoa_portfolio.json"
    jobs_to_csv(ghz_jobs, str(ghz_csv))
    jobs_to_json(qaoa_jobs, str(qaoa_json))
    print(f"Wrote {ghz_csv} ({len(ghz_jobs)} jobs) and {qaoa_json} ({len(qaoa_jobs)} jobs)")

    # 2. Reload from disk — this is what an external user with a job trace does.
    ghz_loaded = jobs_from_csv(str(ghz_csv))
    qaoa_loaded = jobs_from_json(str(qaoa_json))

    # 3./4. Simulate and report.
    ghz_summary = run_workload("GHZ width sweep (CSV)", ghz_loaded)
    qaoa_summary = run_workload("QAOA portfolio batch (JSON)", qaoa_loaded)

    print("\n--- Workload summaries ---")
    for name, summary in (("ghz_sweep", ghz_summary), ("qaoa_portfolio", qaoa_summary)):
        print(f"{name:<16} T_sim={summary.total_simulation_time:>10.1f}s "
              f"fidelity={summary.mean_fidelity:.4f}±{summary.std_fidelity:.4f} "
              f"T_comm={summary.total_communication_time:.1f}s")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
