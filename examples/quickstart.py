#!/usr/bin/env python
"""Quickstart: simulate a small quantum-cloud workload with one scheduler.

Builds the paper's five-device IBM fleet, generates a handful of large
synthetic circuits (each wider than a single 127-qubit QPU), schedules them
with the speed-optimised policy, and prints per-job results plus the summary
metrics the paper reports in Table 2 (simulated makespan, mean fidelity,
total communication time).

Run:
    python examples/quickstart.py [NUM_JOBS]
"""

from __future__ import annotations

import sys

from repro.cloud import QCloudSimEnv, SimulationConfig


def main(num_jobs: int = 20) -> None:
    config = SimulationConfig(
        policy="speed",       # one of: speed, fidelity, fair (rlbase needs a trained model)
        num_jobs=num_jobs,    # the paper's case study uses 1,000
        seed=2025,
    )
    env = QCloudSimEnv(config)
    records = env.run_until_complete()

    print(f"Simulated {len(records)} jobs on {len(env.cloud.devices)} devices\n")
    print(f"{'job':>4} {'qubits':>7} {'depth':>6} {'devices':>8} {'wait (s)':>10} "
          f"{'turnaround (s)':>15} {'fidelity':>9}")
    for record in records[:10]:
        print(
            f"{record.job_id:>4} {record.num_qubits:>7} {record.depth:>6} "
            f"{record.num_devices:>8} {record.wait_time:>10.1f} "
            f"{record.turnaround_time:>15.1f} {record.fidelity:>9.4f}"
        )
    if len(records) > 10:
        print(f"... ({len(records) - 10} more jobs)")

    summary = env.summary()
    print("\n--- Summary (one row of Table 2) ---")
    print(f"strategy              : {summary.strategy}")
    print(f"T_sim  (makespan, s)  : {summary.total_simulation_time:,.2f}")
    print(f"fidelity (mean ± std) : {summary.mean_fidelity:.5f} ± {summary.std_fidelity:.5f}")
    print(f"T_comm (total, s)     : {summary.total_communication_time:,.2f}")
    print(f"devices per job (avg) : {summary.mean_devices_per_job:.2f}")

    print("\n--- Per-device utilisation ---")
    for name, stats in env.device_utilization_report().items():
        print(f"{name:<16} sub-jobs={stats['completed_subjobs']:<5} "
              f"busy_time={stats['busy_time']:,.1f}s")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20)
