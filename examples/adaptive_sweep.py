#!/usr/bin/env python
"""Sweep adaptive-QoS policies across hostile scenario × tenant-mix pairs.

Builds an adaptive-policy × scenario grid through the experiment engine and
prints one row per cell, then re-runs the most contended cell with the
``predictive`` policy in-process to show the closed-loop control plane at
work: per-tenant SLO attainment next to the static baseline, and the
control decisions (AIMD rate adjustments, plan bias, checkpoint flips) the
controllers actually took.

Run:
    python examples/adaptive_sweep.py [NUM_JOBS] [--parallel]
"""

from __future__ import annotations

import sys

from repro.analysis.reporting import format_tenant_table
from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.engine import ExperimentRunner, ExperimentSpec

ADAPTIVE_POLICIES = (None, "static", "reactive", "predictive")
SCENARIO = "black-friday"
TENANTS = "noisy-neighbor"


def _slo_attainment(env) -> float:
    """Mean attainment over the run's SLO-bearing tenants."""
    values = []
    for report in env.broker.tenant_reports():
        slo = env.tenant_mix.tenant(report.tenant).slo
        has_slo = (
            slo.queue_deadline is not None
            or slo.completion_deadline is not None
            or slo.fidelity_floor is not None
        )
        if has_slo and report.attainment is not None:
            values.append(report.attainment)
    return sum(values) / len(values) if values else float("nan")


def main(num_jobs: int = 60, parallel: bool = False) -> None:
    spec = ExperimentSpec(
        base_config=SimulationConfig(
            num_jobs=num_jobs, seed=2025, scenario=SCENARIO, tenants=TENANTS
        ),
        strategies=("fidelity",),
        adaptive=ADAPTIVE_POLICIES,
    )
    runner = ExperimentRunner(backend="process" if parallel else "serial")

    print(f"Executing {len(spec)} adaptive-policy cells "
          f"({SCENARIO} x {TENANTS}) on the {runner.backend} backend ...\n")
    result = runner.run(spec)

    print(f"{'adaptive':<12} {'done':>5} {'fidelity':>10} {'T_sim(s)':>12} "
          f"{'mean wait(s)':>13}")
    for cell_result in result:
        config = cell_result.cell.config
        summary = cell_result.summary
        print(
            f"{config.adaptive or '-':<12} {summary.num_jobs:>5} "
            f"{summary.mean_fidelity:>10.5f} {summary.total_simulation_time:>12,.1f} "
            f"{summary.mean_wait_time:>13,.1f}"
        )

    # Attainment and control decisions need the live environment (SLO
    # reports and controller trajectories), so re-run the static baseline
    # and the predictive policy in-process.
    envs = {}
    for adaptive in ("static", "predictive"):
        env = QCloudSimEnv(
            SimulationConfig(
                num_jobs=num_jobs, seed=2025, policy="fidelity",
                scenario=SCENARIO, tenants=TENANTS, adaptive=adaptive,
            )
        )
        env.run_until_complete()
        envs[adaptive] = env

    print("\nSLO attainment (mean over SLO-bearing tenants):")
    for adaptive, env in envs.items():
        print(f"  {adaptive:<12} {_slo_attainment(env):.3f}")

    predictive = envs["predictive"]
    print("\nPer-tenant SLO report (predictive):")
    print(format_tenant_table(predictive.tenant_reports()))

    report = predictive.adaptive_report()
    print(f"Control plane: {report['ticks']} ticks, "
          f"controllers: {', '.join(report['controllers'])}")
    decisions = report["decisions"]
    admission = decisions.get("adaptive-admission", {})
    planner = decisions.get("slo-planner", {})
    checkpointer = decisions.get("proactive-checkpointer", {})
    print(f"  AIMD rate adjustments : {admission.get('adjustments', 0)} "
          f"({admission.get('breaches', 0)} breach ticks)")
    print(f"  plan bias             : {planner.get('latency_biased', 0)} latency, "
          f"{planner.get('fidelity_biased', 0)} fidelity")
    print(f"  checkpointed attempts : {checkpointer.get('checkpointed_attempts', 0)}")


if __name__ == "__main__":
    positional = [a for a in sys.argv[1:] if not a.startswith("--")]
    main(
        num_jobs=int(positional[0]) if positional else 60,
        parallel="--parallel" in sys.argv,
    )
