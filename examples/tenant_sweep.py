#!/usr/bin/env python
"""Sweep tenant mixes across world-dynamics scenarios.

Builds a tenant-mix × scenario grid through the experiment engine, prints one
summary row per cell, then re-runs one contended cell in-process to show the
per-tenant SLO report: attainment, tail latency and how many jobs each tenant
had shed or preempted.

Run:
    python examples/tenant_sweep.py [NUM_JOBS] [--parallel]
"""

from __future__ import annotations

import sys

from repro.analysis.reporting import format_tenant_table
from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.engine import ExperimentRunner, ExperimentSpec

TENANT_MIXES = ("single", "free-tier-vs-premium", "batch-vs-interactive", "noisy-neighbor")
SCENARIOS = (None, "rush-hour")


def main(num_jobs: int = 40, parallel: bool = False) -> None:
    spec = ExperimentSpec(
        base_config=SimulationConfig(num_jobs=num_jobs, seed=2025),
        strategies=("fidelity",),
        scenarios=SCENARIOS,
        tenant_mixes=TENANT_MIXES,
    )
    runner = ExperimentRunner(backend="process" if parallel else "serial")

    print(f"Executing {len(spec)} tenant-mix x scenario cells on the "
          f"{runner.backend} backend ...\n")
    result = runner.run(spec)

    print(f"{'mix':<22} {'scenario':<10} {'done':>5} {'fidelity':>10} "
          f"{'T_sim(s)':>12} {'mean wait(s)':>13}")
    for cell_result in result:
        config = cell_result.cell.config
        summary = cell_result.summary
        print(
            f"{config.tenants:<22} {config.scenario or '-':<10} {summary.num_jobs:>5} "
            f"{summary.mean_fidelity:>10.5f} {summary.total_simulation_time:>12,.1f} "
            f"{summary.mean_wait_time:>13,.1f}"
        )

    # Per-tenant SLO accounting needs the live environment (rejections and
    # preemptions live in the event log), so re-run one contended cell
    # in-process.
    print("\nPer-tenant SLO report (free-tier-vs-premium under rush-hour):")
    env = QCloudSimEnv(
        SimulationConfig(
            num_jobs=num_jobs, seed=2025, policy="fidelity",
            scenario="rush-hour", tenants="free-tier-vs-premium",
        )
    )
    env.run_until_complete()
    print(format_tenant_table(env.tenant_reports()))


if __name__ == "__main__":
    positional = [a for a in sys.argv[1:] if not a.startswith("--")]
    main(
        num_jobs=int(positional[0]) if positional else 40,
        parallel="--parallel" in sys.argv,
    )
