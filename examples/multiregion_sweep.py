#!/usr/bin/env python
"""Sweep routing policies across sharded multi-region cloud topologies.

Runs the same global workload size over the multi-region presets — healthy
dual-region, a region-wide outage, antiphase rush hours and follow-the-sun
diurnal traffic — under different routing policies, printing one summary row
per (topology, routing) cell and a per-region report for the outage world
(watch the spillover: jobs originating in the blacked-out region are served
across the region link, paying transfer latency and a fidelity penalty).

Run:
    python examples/multiregion_sweep.py [NUM_JOBS] [--parallel]
"""

from __future__ import annotations

import sys

from repro.analysis.reporting import format_region_table
from repro.cloud.config import SimulationConfig
from repro.engine import ExperimentRunner
from repro.region import RegionalCloud

TOPOLOGIES = ("dual", "region-outage", "cross-region-rush-hour", "follow-the-sun")
ROUTINGS = ("locality", "least-loaded")


def run_cell(topology: str, routing: str, num_jobs: int, runner: ExperimentRunner):
    config = SimulationConfig(
        num_jobs=num_jobs, policy="fidelity", seed=2025, regions=topology, routing=routing
    )
    cloud = RegionalCloud(config=config, runner=runner)
    cloud.run_until_complete()
    return cloud


def main(num_jobs: int = 40, parallel: bool = False) -> None:
    runner = ExperimentRunner(backend="process" if parallel else "serial")
    cells = len(TOPOLOGIES) * len(ROUTINGS)
    print(f"Executing {cells} topology x routing cells "
          f"({num_jobs} jobs each, {runner.backend} shards) ...\n")

    clouds = {}
    print(f"{'topology':<24} {'routing':<14} {'fidelity':>10} {'T_comm(s)':>11} "
          f"{'failed':>7} {'migrations':>11}")
    for topology in TOPOLOGIES:
        for routing in ROUTINGS:
            cloud = run_cell(topology, routing, num_jobs, runner)
            clouds[(topology, routing)] = cloud
            summary = cloud.summary()
            print(f"{topology:<24} {routing:<14} {summary.mean_fidelity:>10.5f} "
                  f"{summary.total_communication_time:>11,.1f} "
                  f"{len(cloud.failed):>7} {len(cloud.migrations):>11}")

    showcase = clouds[("region-outage", "locality")]
    print("\nPer-region report (region-outage, locality routing):")
    print(format_region_table(showcase.region_reports()))
    spilled = sum(
        1 for job_id, origin in showcase.origin_of.items()
        if showcase.region_of[job_id] != origin
    )
    print(f"\n{spilled} of {num_jobs} jobs were served outside their origin region "
          "(the blacked-out region's arrivals spill across the link).")


if __name__ == "__main__":
    positional = [a for a in sys.argv[1:] if not a.startswith("--")]
    main(
        num_jobs=int(positional[0]) if positional else 40,
        parallel="--parallel" in sys.argv,
    )
