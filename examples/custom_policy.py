#!/usr/bin/env python
"""Write and register a custom allocation policy (the framework's extension point).

The paper's framework supports "both built-in and user-defined scheduling
policies".  This example implements a *deadline-pressure* policy that trades
off device speed against error score depending on how large the job is
(big jobs go to fast devices to bound runtime, small jobs go to the cleanest
devices), registers it under a name, and compares it against the built-in
speed and fidelity policies on the same workload.

Run:
    python examples/custom_policy.py [NUM_JOBS]
"""

from __future__ import annotations

import sys
from typing import Any, Optional, Sequence

from repro.analysis import format_table2, run_case_study
from repro.cloud import SimulationConfig
from repro.scheduling import AllocationPlan, AllocationPolicy, register_policy


class SizeAwarePolicy(AllocationPolicy):
    """Route large jobs to fast devices and small jobs to low-error devices.

    A job whose qubit demand exceeds ``size_threshold`` is scheduled like the
    speed policy (CLOPS-descending greedy fill); smaller jobs are scheduled
    like the error-aware policy (error-score-ascending greedy fill).
    """

    name = "size_aware"

    def __init__(self, size_threshold: int = 190) -> None:
        self.size_threshold = int(size_threshold)

    def plan(self, job: Any, devices: Sequence[Any]) -> Optional[AllocationPlan]:
        if job.num_qubits >= self.size_threshold:
            ordered = sorted(devices, key=lambda d: (-d.clops, -d.free_qubits, d.name))
        else:
            ordered = sorted(devices, key=lambda d: (d.error_score(), d.name))
        return self._greedy_fill(job, ordered)


def main(num_jobs: int = 80) -> None:
    # Make the custom policy available by name, exactly like the built-ins.
    register_policy("size_aware", SizeAwarePolicy)

    config = SimulationConfig(num_jobs=num_jobs, seed=7)
    result = run_case_study(
        config,
        strategies=("speed", "fidelity", "size_aware"),
        policies={"size_aware": SizeAwarePolicy(size_threshold=190)},
    )

    print("=== Built-in strategies vs. the custom size-aware policy ===")
    print(format_table2(result.summaries))

    custom = result.summaries["size_aware"]
    speed = result.summaries["speed"]
    fidelity = result.summaries["fidelity"]
    print("\nThe custom policy should land between the two built-ins:")
    print(f"  runtime : speed {speed.total_simulation_time:,.0f}s "
          f"<= size_aware {custom.total_simulation_time:,.0f}s "
          f"<= fidelity {fidelity.total_simulation_time:,.0f}s (roughly)")
    print(f"  fidelity: speed {speed.mean_fidelity:.4f} "
          f"vs size_aware {custom.mean_fidelity:.4f} "
          f"vs fidelity {fidelity.mean_fidelity:.4f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 80)
