#!/usr/bin/env python
"""Sweep an ablation grid through the parallel experiment engine.

Builds a strategy × replicate × φ (communication fidelity penalty) grid,
executes it on the requested backend, caches every cell in a ResultStore —
run the script twice and the second run restores all cells from cache —
and prints the aggregated grid.

Run:
    python examples/parallel_sweep.py [NUM_JOBS] [--parallel] [--store DIR]
"""

from __future__ import annotations

import sys

from repro.cloud.config import SimulationConfig
from repro.engine import ExperimentRunner, ExperimentSpec, ResultStore


def main(num_jobs: int = 40, parallel: bool = False, store_dir: str | None = None) -> None:
    spec = ExperimentSpec(
        base_config=SimulationConfig(num_jobs=num_jobs, seed=2025),
        strategies=("speed", "fidelity", "fair"),
        replicates=2,
        overrides=({"comm_fidelity_penalty": 0.90}, {"comm_fidelity_penalty": 0.95}),
    )
    runner = ExperimentRunner(
        backend="process" if parallel else "serial",
        store=ResultStore(store_dir) if store_dir else None,
    )

    print(f"Executing {len(spec)} grid cells on the {runner.backend} backend ...\n")
    result = runner.run(spec)

    print(f"{'phi':<6} {'strategy':<10} {'seed':>20} {'fidelity':>10} {'T_sim(s)':>12} {'cached':>7}")
    for cell_result in result:
        phi = cell_result.cell.config.comm_fidelity_penalty
        s = cell_result.summary
        print(
            f"{phi:<6} {cell_result.cell.strategy:<10} {cell_result.cell.seed:>20} "
            f"{s.mean_fidelity:>10.5f} {s.total_simulation_time:>12,.1f} "
            f"{'yes' if cell_result.cached else 'no':>7}"
        )

    cached = sum(1 for r in result if r.cached)
    print(f"\n{len(result)} cells, {cached} restored from cache")
    if runner.store is not None:
        path = runner.store.write_summaries_csv(result.summary_rows())
        print(f"wrote summary rows to {path}")


if __name__ == "__main__":
    positional = [a for a in sys.argv[1:] if not a.startswith("--")]
    store_dir = None
    if "--store" in sys.argv:
        store_dir = sys.argv[sys.argv.index("--store") + 1]
        if store_dir in positional:
            positional.remove(store_dir)
    main(
        num_jobs=int(positional[0]) if positional else 40,
        parallel="--parallel" in sys.argv,
        store_dir=store_dir,
    )
