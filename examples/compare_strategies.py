#!/usr/bin/env python
"""Compare the paper's allocation strategies on one workload (Table 2 / Fig. 6).

Runs the same synthetic workload through the speed-optimised, error-aware
(fidelity), fair and — optionally — RL-based allocation strategies, then
prints the Table-2-style comparison and ASCII fidelity histograms
(the textual counterpart of the paper's Fig. 6).

Run:
    python examples/compare_strategies.py [NUM_JOBS] [--with-rl] [--parallel]

``--with-rl`` trains a small PPO policy first (a few seconds) so the rlbase
row can be included; without it only the three heuristic strategies run.
``--parallel`` executes the strategies concurrently on the experiment
engine's process-pool backend (results are identical to the serial run).
"""

from __future__ import annotations

import sys

from repro.analysis import ascii_histogram, format_table2, run_case_study
from repro.analysis.histogram import distribution_stats
from repro.cloud.config import SimulationConfig


def main(num_jobs: int = 100, with_rl: bool = False, parallel: bool = False) -> None:
    config = SimulationConfig(num_jobs=num_jobs, seed=2025)

    rl_model = None
    strategies = ["speed", "fidelity", "fair"]
    if with_rl:
        from repro.rlenv.train import train_allocation_policy

        print("Training the PPO allocation policy (scaled-down budget)...")
        rl_model, _curve = train_allocation_policy(total_timesteps=8192, n_steps=1024, seed=0)
        strategies.append("rlbase")

    backend = "process" if parallel else "serial"
    print(f"Running {len(strategies)} strategies x {num_jobs} jobs ({backend} backend) ...\n")
    result = run_case_study(
        config, strategies=tuple(strategies), rl_model=rl_model, backend=backend
    )

    print("=== Table 2 (reproduced, scaled workload) ===")
    print(format_table2(result.summaries))

    print("\n=== Fidelity distributions (Fig. 6, ASCII rendering) ===")
    for strategy in strategies:
        fidelities = result.fidelities(strategy)
        stats = distribution_stats(fidelities)
        print()
        print(ascii_histogram(fidelities, bins=12, width=40, title=f"[{strategy}] "
                              f"mean={stats['mean']:.4f} std={stats['std']:.4f} "
                              f"range={stats['range_width']:.4f}"))

    print("\n=== Observed trade-offs ===")
    s = result.summaries
    fastest = min(s.values(), key=lambda x: x.total_simulation_time)
    best_fid = max(s.values(), key=lambda x: x.mean_fidelity)
    least_comm = min(s.values(), key=lambda x: x.total_communication_time)
    print(f"fastest strategy       : {fastest.strategy}")
    print(f"highest mean fidelity  : {best_fid.strategy}")
    print(f"least communication    : {least_comm.strategy}")


if __name__ == "__main__":
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    main(
        num_jobs=int(args[0]) if args else 100,
        with_rl="--with-rl" in sys.argv,
        parallel="--parallel" in sys.argv,
    )
